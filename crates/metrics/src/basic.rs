//! The elementary rate metrics: one marginal ratio each.
//!
//! These are the metrics "traditionally used" that the paper examines first:
//! precision, recall and their complements/duals. Each is a unit struct
//! implementing [`Metric`].

use crate::catalog::MetricId;
use crate::confusion::ConfusionMatrix;
use crate::metric::{fraction, require_nonempty, Metric, MetricError};
use crate::properties::{MetricProperties, Monotonicity};

/// Positive predictive value: `TP / (TP + FP)` — of everything the tool
/// reported, how much was real.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Precision;

impl Metric for Precision {
    fn id(&self) -> MetricId {
        MetricId::Precision
    }
    fn name(&self) -> &'static str {
        "Precision (positive predictive value)"
    }
    fn abbrev(&self) -> &'static str {
        "PPV"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.tp as f64,
            cm.predicted_positive() as f64,
            "tool reported no units (TP + FP = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 5,
            uses_both_error_types: false,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(prevalence)
    }
}

/// Recall (sensitivity, true-positive rate): `TP / (TP + FN)` — of the real
/// vulnerabilities, how many the tool found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Recall;

impl Metric for Recall {
    fn id(&self) -> MetricId {
        MetricId::Recall
    }
    fn name(&self) -> &'static str {
        "Recall (sensitivity, true-positive rate)"
    }
    fn abbrev(&self) -> &'static str {
        "TPR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.tp as f64,
            cm.actual_positive() as f64,
            "workload has no vulnerable units (TP + FN = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 5,
            prevalence_invariant: true,
            uses_both_error_types: false,
            monotone_fpr: Monotonicity::Independent,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, report_rate: f64) -> Option<f64> {
        Some(report_rate)
    }
}

/// Specificity (true-negative rate): `TN / (TN + FP)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Specificity;

impl Metric for Specificity {
    fn id(&self) -> MetricId {
        MetricId::Specificity
    }
    fn name(&self) -> &'static str {
        "Specificity (true-negative rate)"
    }
    fn abbrev(&self) -> &'static str {
        "TNR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.tn as f64,
            cm.actual_negative() as f64,
            "workload has no clean units (TN + FP = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 4,
            prevalence_invariant: true,
            uses_both_error_types: false,
            monotone_tpr: Monotonicity::Independent,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, report_rate: f64) -> Option<f64> {
        Some(1.0 - report_rate)
    }
}

/// Negative predictive value: `TN / (TN + FN)` — confidence in a clean
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Npv;

impl Metric for Npv {
    fn id(&self) -> MetricId {
        MetricId::Npv
    }
    fn name(&self) -> &'static str {
        "Negative predictive value"
    }
    fn abbrev(&self) -> &'static str {
        "NPV"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.tn as f64,
            cm.predicted_negative() as f64,
            "tool reported every unit (TN + FN = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 4,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(1.0 - prevalence)
    }
}

/// Accuracy: `(TP + TN) / total`. Famously degenerate at low prevalence —
/// the "always say clean" tool scores `1 - prevalence`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accuracy;

impl Metric for Accuracy {
    fn id(&self) -> MetricId {
        MetricId::Accuracy
    }
    fn name(&self) -> &'static str {
        "Accuracy"
    }
    fn abbrev(&self) -> &'static str {
        "ACC"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        Ok((cm.tp + cm.tn) as f64 / cm.total() as f64)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 5,
            defined_everywhere: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64> {
        Some(prevalence * report_rate + (1.0 - prevalence) * (1.0 - report_rate))
    }
}

/// Fallout (false-positive rate): `FP / (FP + TN)`. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fallout;

impl Metric for Fallout {
    fn id(&self) -> MetricId {
        MetricId::Fallout
    }
    fn name(&self) -> &'static str {
        "Fallout (false-positive rate)"
    }
    fn abbrev(&self) -> &'static str {
        "FPR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.fp as f64,
            cm.actual_negative() as f64,
            "workload has no clean units (TN + FP = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 4,
            prevalence_invariant: true,
            uses_both_error_types: false,
            monotone_tpr: Monotonicity::Independent,
            monotone_fpr: Monotonicity::Increasing,
            ..MetricProperties::unit_rate()
        }
    }
    fn higher_is_better(&self) -> bool {
        false
    }
    fn chance_level(&self, _prevalence: f64, report_rate: f64) -> Option<f64> {
        Some(report_rate)
    }
}

/// Miss rate (false-negative rate): `FN / (TP + FN)`. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissRate;

impl Metric for MissRate {
    fn id(&self) -> MetricId {
        MetricId::MissRate
    }
    fn name(&self) -> &'static str {
        "Miss rate (false-negative rate)"
    }
    fn abbrev(&self) -> &'static str {
        "FNR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.fn_ as f64,
            cm.actual_positive() as f64,
            "workload has no vulnerable units (TP + FN = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 4,
            prevalence_invariant: true,
            uses_both_error_types: false,
            monotone_tpr: Monotonicity::Decreasing,
            monotone_fpr: Monotonicity::Independent,
            ..MetricProperties::unit_rate()
        }
    }
    fn higher_is_better(&self) -> bool {
        false
    }
    fn chance_level(&self, _prevalence: f64, report_rate: f64) -> Option<f64> {
        Some(1.0 - report_rate)
    }
}

/// False discovery rate: `FP / (TP + FP)` = 1 − precision. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FalseDiscoveryRate;

impl Metric for FalseDiscoveryRate {
    fn id(&self) -> MetricId {
        MetricId::Fdr
    }
    fn name(&self) -> &'static str {
        "False discovery rate"
    }
    fn abbrev(&self) -> &'static str {
        "FDR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.fp as f64,
            cm.predicted_positive() as f64,
            "tool reported no units (TP + FP = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 4,
            uses_both_error_types: false,
            monotone_tpr: Monotonicity::Decreasing,
            monotone_fpr: Monotonicity::Increasing,
            ..MetricProperties::unit_rate()
        }
    }
    fn higher_is_better(&self) -> bool {
        false
    }
    fn chance_level(&self, prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(1.0 - prevalence)
    }
}

/// False omission rate: `FN / (FN + TN)` = 1 − NPV. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FalseOmissionRate;

impl Metric for FalseOmissionRate {
    fn id(&self) -> MetricId {
        MetricId::ForRate
    }
    fn name(&self) -> &'static str {
        "False omission rate"
    }
    fn abbrev(&self) -> &'static str {
        "FOR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        fraction(
            cm.fn_ as f64,
            cm.predicted_negative() as f64,
            "tool reported every unit (TN + FN = 0)",
        )
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 3,
            monotone_tpr: Monotonicity::Decreasing,
            monotone_fpr: Monotonicity::Increasing,
            ..MetricProperties::unit_rate()
        }
    }
    fn higher_is_better(&self) -> bool {
        false
    }
    fn chance_level(&self, prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(prevalence)
    }
}

/// Detected-vulnerabilities count normalized by workload positives —
/// included as the "coverage" metric some benchmarks report; numerically
/// identical to recall but kept as a distinct catalog row with its own
/// identity so selection tables mirror the paper's gathered list.
pub type Coverage = Recall;

/// Range check shared by the test suite: every basic metric stays inside
/// its declared range on any non-degenerate matrix.
#[cfg(test)]
pub(crate) fn all_basic() -> Vec<Box<dyn Metric>> {
    vec![
        Box::new(Precision),
        Box::new(Recall),
        Box::new(Specificity),
        Box::new(Npv),
        Box::new(Accuracy),
        Box::new(Fallout),
        Box::new(MissRate),
        Box::new(FalseDiscoveryRate),
        Box::new(FalseOmissionRate),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricExt;

    fn cm() -> ConfusionMatrix {
        ConfusionMatrix::new(40, 10, 20, 130)
    }

    #[test]
    fn values_match_hand_computation() {
        let cm = cm();
        assert!((Precision.compute(&cm).unwrap() - 0.8).abs() < 1e-12);
        assert!((Recall.compute(&cm).unwrap() - 40.0 / 60.0).abs() < 1e-12);
        assert!((Specificity.compute(&cm).unwrap() - 130.0 / 140.0).abs() < 1e-12);
        assert!((Npv.compute(&cm).unwrap() - 130.0 / 150.0).abs() < 1e-12);
        assert!((Accuracy.compute(&cm).unwrap() - 170.0 / 200.0).abs() < 1e-12);
        assert!((Fallout.compute(&cm).unwrap() - 10.0 / 140.0).abs() < 1e-12);
        assert!((MissRate.compute(&cm).unwrap() - 20.0 / 60.0).abs() < 1e-12);
        assert!((FalseDiscoveryRate.compute(&cm).unwrap() - 0.2).abs() < 1e-12);
        assert!((FalseOmissionRate.compute(&cm).unwrap() - 20.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn complements() {
        let cm = cm();
        let p = Precision.compute(&cm).unwrap();
        let fdr = FalseDiscoveryRate.compute(&cm).unwrap();
        assert!((p + fdr - 1.0).abs() < 1e-12);
        let r = Recall.compute(&cm).unwrap();
        let miss = MissRate.compute(&cm).unwrap();
        assert!((r + miss - 1.0).abs() < 1e-12);
        let s = Specificity.compute(&cm).unwrap();
        let f = Fallout.compute(&cm).unwrap();
        assert!((s + f - 1.0).abs() < 1e-12);
        let n = Npv.compute(&cm).unwrap();
        let fo = FalseOmissionRate.compute(&cm).unwrap();
        assert!((n + fo - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_in_declared_range() {
        let matrices = [
            ConfusionMatrix::new(1, 1, 1, 1),
            ConfusionMatrix::new(10, 0, 0, 10),
            ConfusionMatrix::new(0, 10, 10, 0),
            ConfusionMatrix::new(3, 7, 2, 88),
        ];
        for m in super::all_basic() {
            for cm in &matrices {
                if let Ok(v) = m.compute(cm) {
                    assert!(
                        m.properties().range.contains(v),
                        "{} out of range on {cm}: {v}",
                        m.abbrev()
                    );
                }
            }
        }
    }

    #[test]
    fn undefined_cases() {
        let nothing_reported = ConfusionMatrix::new(0, 0, 5, 5);
        assert!(Precision.compute(&nothing_reported).is_err());
        assert!(FalseDiscoveryRate.compute(&nothing_reported).is_err());
        let everything_reported = ConfusionMatrix::new(5, 5, 0, 0);
        assert!(Npv.compute(&everything_reported).is_err());
        assert!(FalseOmissionRate.compute(&everything_reported).is_err());
        let no_positives = ConfusionMatrix::new(0, 5, 0, 5);
        assert!(Recall.compute(&no_positives).is_err());
        assert!(MissRate.compute(&no_positives).is_err());
        let no_negatives = ConfusionMatrix::new(5, 0, 5, 0);
        assert!(Specificity.compute(&no_negatives).is_err());
        assert!(Fallout.compute(&no_negatives).is_err());
        for m in super::all_basic() {
            assert_eq!(
                m.compute(&ConfusionMatrix::empty()).unwrap_err(),
                MetricError::EmptyMatrix
            );
        }
    }

    #[test]
    fn perfect_tool_scores() {
        let perfect = ConfusionMatrix::new(10, 0, 0, 90);
        assert_eq!(Precision.compute(&perfect).unwrap(), 1.0);
        assert_eq!(Recall.compute(&perfect).unwrap(), 1.0);
        assert_eq!(Accuracy.compute(&perfect).unwrap(), 1.0);
        assert_eq!(Fallout.compute(&perfect).unwrap(), 0.0);
        assert_eq!(MissRate.compute(&perfect).unwrap(), 0.0);
    }

    #[test]
    fn chance_levels() {
        // Random tool reporting 30% of units on a 10%-prevalent workload.
        let pi = 0.1;
        let r = 0.3;
        assert_eq!(Precision.chance_level(pi, r), Some(0.1));
        assert_eq!(Recall.chance_level(pi, r), Some(0.3));
        assert_eq!(Specificity.chance_level(pi, r), Some(0.7));
        let acc = Accuracy.chance_level(pi, r).unwrap();
        assert!((acc - (0.1 * 0.3 + 0.9 * 0.7)).abs() < 1e-12);
    }

    #[test]
    fn direction_flags() {
        assert!(Precision.higher_is_better());
        assert!(!Fallout.higher_is_better());
        assert!(!MissRate.higher_is_better());
        assert!(!FalseDiscoveryRate.higher_is_better());
        assert!(!FalseOmissionRate.higher_is_better());
    }

    #[test]
    fn accuracy_degenerates_at_low_prevalence() {
        // The "always clean" tool on a 1%-prevalent workload.
        let silent = ConfusionMatrix::new(0, 0, 10, 990);
        assert!((Accuracy.compute(&silent).unwrap() - 0.99).abs() < 1e-12);
        // ...yet it found nothing: recall is 0.
        assert_eq!(Recall.compute(&silent).unwrap(), 0.0);
    }

    #[test]
    fn oriented_scores_rank_better_tools_higher() {
        let good = ConfusionMatrix::new(9, 1, 1, 89);
        let bad = ConfusionMatrix::new(5, 5, 5, 85);
        for m in super::all_basic() {
            let (g, b) = (m.oriented(&good), m.oriented(&bad));
            if let (Ok(g), Ok(b)) = (g, b) {
                assert!(g >= b, "{} ranked bad tool above good", m.abbrev());
            }
        }
    }
}
