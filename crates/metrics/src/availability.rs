//! Scan availability: the operational health of a benchmarked tool.
//!
//! The paper's detection metrics assume every tool produced a scan
//! result. Real campaigns are messier: tools time out, crash and exhaust
//! their step budgets. [`Availability`] counts completed versus failed
//! scans and summarizes them as a ratio, so the campaign engine can report
//! *how much* of the roster actually ran alongside the detection metrics
//! of the scans that did (see the resilient engine in `vdbench-core` and
//! DESIGN.md §12).
//!
//! ```
//! use vdbench_metrics::availability::Availability;
//!
//! let mut a = Availability::new();
//! for ok in [true, true, false, true] {
//!     a.record(ok);
//! }
//! assert_eq!(a.completed(), 3);
//! assert_eq!(a.failed(), 1);
//! assert!((a.ratio() - 0.75).abs() < 1e-12);
//! assert!(a.is_degraded());
//! assert_eq!(a.to_string(), "3/4 (75%)");
//! ```

use std::fmt;

/// Completed/failed scan counts and the availability ratio they induce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Availability {
    completed: u64,
    failed: u64,
}

impl Availability {
    /// An empty tally (vacuously fully available).
    #[must_use]
    pub fn new() -> Self {
        Availability::default()
    }

    /// Builds a tally directly from counts.
    #[must_use]
    pub fn from_counts(completed: u64, failed: u64) -> Self {
        Availability { completed, failed }
    }

    /// Records one scan outcome.
    pub fn record(&mut self, completed: bool) {
        if completed {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Scans that completed (possibly after retries).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Scans that exhausted their retry budget.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// All scans counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.completed + self.failed
    }

    /// Completed / total. An empty tally is vacuously `1.0` — "no scans
    /// failed", the identity under [`Availability::merge`].
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.completed as f64 / total as f64
        }
    }

    /// Whether any scan failed.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.failed > 0
    }

    /// Folds another tally into this one (campaign-level roll-up over
    /// scenarios).
    pub fn merge(&mut self, other: Availability) {
        self.completed += other.completed;
        self.failed += other.failed;
    }
}

impl fmt::Display for Availability {
    /// `completed/total (percent%)`, percent rounded to the nearest
    /// integer.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.0}%)",
            self.completed,
            self.total(),
            self.ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally_is_vacuously_available() {
        let a = Availability::new();
        assert_eq!(a.total(), 0);
        assert_eq!(a.ratio(), 1.0);
        assert!(!a.is_degraded());
        assert_eq!(a.to_string(), "0/0 (100%)");
    }

    #[test]
    fn counts_ratio_and_display() {
        let mut a = Availability::from_counts(30, 2);
        assert_eq!(a.total(), 32);
        assert!((a.ratio() - 30.0 / 32.0).abs() < 1e-12);
        assert!(a.is_degraded());
        assert_eq!(a.to_string(), "30/32 (94%)");
        a.record(true);
        a.record(false);
        assert_eq!((a.completed(), a.failed()), (31, 3));
    }

    #[test]
    fn merge_is_count_addition_with_empty_identity() {
        let mut total = Availability::new();
        total.merge(Availability::from_counts(7, 1));
        total.merge(Availability::from_counts(8, 0));
        total.merge(Availability::new());
        assert_eq!(total, Availability::from_counts(15, 1));
    }
}
