//! Chance-agreement-corrected metrics.
//!
//! Cohen's κ compares observed agreement between the tool and the ground
//! truth against the agreement expected if the tool's report rate were
//! independent of the truth. It complements the operating-point-based
//! corrections (informedness, MCC) in the catalog.

use crate::catalog::MetricId;
use crate::confusion::ConfusionMatrix;
use crate::metric::{require_nonempty, Metric, MetricError};
use crate::properties::{MetricProperties, ValueRange};

/// Cohen's kappa: `(p_o − p_e) / (1 − p_e)` where `p_o` is observed accuracy
/// and `p_e` the accuracy expected by chance given the marginals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CohenKappa;

impl CohenKappa {
    /// Observed agreement `p_o` (plain accuracy).
    pub fn observed_agreement(cm: &ConfusionMatrix) -> f64 {
        (cm.tp + cm.tn) as f64 / cm.total() as f64
    }

    /// Expected agreement `p_e` under marginal independence.
    pub fn expected_agreement(cm: &ConfusionMatrix) -> f64 {
        let t = cm.total() as f64;
        let yes = (cm.predicted_positive() as f64 / t) * (cm.actual_positive() as f64 / t);
        let no = (cm.predicted_negative() as f64 / t) * (cm.actual_negative() as f64 / t);
        yes + no
    }
}

impl Metric for CohenKappa {
    fn id(&self) -> MetricId {
        MetricId::Kappa
    }
    fn name(&self) -> &'static str {
        "Cohen's kappa"
    }
    fn abbrev(&self) -> &'static str {
        "κ"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let po = Self::observed_agreement(cm);
        let pe = Self::expected_agreement(cm);
        if (1.0 - pe).abs() < f64::EPSILON {
            return Err(MetricError::Undefined {
                reason: "expected agreement is 1 (degenerate marginals)",
            });
        }
        Ok((po - pe) / (1.0 - pe))
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::SIGNED_UNIT,
            simplicity: 2,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let cm = ConfusionMatrix::new(10, 0, 0, 90);
        assert!((CohenKappa.compute(&cm).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_tool_scores_near_zero() {
        let cm = ConfusionMatrix::from_rates(0.3, 0.3, 10_000, 90_000);
        assert!(CohenKappa.compute(&cm).unwrap().abs() < 1e-6);
    }

    #[test]
    fn known_value() {
        // Classic 2x2 kappa example: po = 0.7, pe = 0.5 → κ = 0.4
        let cm = ConfusionMatrix::new(35, 15, 15, 35);
        let k = CohenKappa.compute(&cm).unwrap();
        assert!((k - 0.4).abs() < 1e-12, "k={k}");
    }

    #[test]
    fn degenerate_marginals_undefined() {
        // Tool reports nothing on an all-clean workload: pe = 1.
        let cm = ConfusionMatrix::new(0, 0, 0, 100);
        assert!(CohenKappa.compute(&cm).is_err());
        assert!(CohenKappa.compute(&ConfusionMatrix::empty()).is_err());
    }

    #[test]
    fn agreement_helpers() {
        let cm = ConfusionMatrix::new(35, 15, 15, 35);
        assert!((CohenKappa::observed_agreement(&cm) - 0.7).abs() < 1e-12);
        assert!((CohenKappa::expected_agreement(&cm) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_kappa_for_inverted_tool() {
        let cm = ConfusionMatrix::new(5, 45, 45, 5);
        assert!(CohenKappa.compute(&cm).unwrap() < 0.0);
    }
}
