//! Three-tier equivalence suite for the MiniWeb interpreter.
//!
//! The interpreter now has three execution tiers, from oracle to
//! production:
//!
//! 1. [`Interpreter::run_session_treewalk`] — the historical AST walker
//!    with `BTreeMap` environments (the semantics oracle);
//! 2. [`Interpreter::run_compiled_slotwalk`] — the slot-compiled tree
//!    walker (names interned to dense frame slots);
//! 3. [`Interpreter::run_compiled`] — the bytecode register VM, the tier
//!    every production caller goes through.
//!
//! Every test here asserts the three tiers agree **exactly** — the same
//! `Vec<SinkObservation>` on success (sites, renders, taint verdicts,
//! offending sources, in order), the same [`ExecError`] on failure — on:
//!
//! * generator-built corpora under attack / benign / multi-request
//!   sessions (the shapes production scanners actually run);
//! * property-generated programs covering every [`Expr`] and [`Stmt`]
//!   node kind, every [`BinOp`], every [`SanitizerKind`], every
//!   [`SinkKind`] and every [`SourceKind`], including programs that are
//!   deliberately malformed (undefined variables / functions, wrong
//!   arity) or runaway (fuel-bounded loops and recursion);
//! * dead-guard shapes: the VM resolves calls at compile time, so
//!   `UndefinedFunction` / `ArityMismatch` detection is *deferred* to
//!   execution for call sites that never run — a statically-broken call
//!   behind a never-taken branch must succeed on all tiers, and the same
//!   call made reachable must fail identically on all tiers;
//! * a **fuel sweep**: for every step budget from 1 up to the program's
//!   full cost, the three tiers return identical results — which proves
//!   `tick()` is charged at identical points (any divergence in charge
//!   position flips `StepLimit` vs `Ok` at some budget). Loop-iteration
//!   and call-depth bounds are swept the same way.
//!
//! The suite also pins the `InterpScratch` frame-pool invariant: failing
//! sessions must return their frames to the pool (the historical leak
//! grew the pool's *live* frame count on every error), so the pool size
//! stays stable across repeated failures on both compiled tiers.

use proptest::prelude::*;
use vdbench_corpus::ast::BinOp;
use vdbench_corpus::interp::ExecError;
use vdbench_corpus::{
    CompiledUnit, CorpusBuilder, Expr, Function, InterpScratch, Interpreter, Request,
    SanitizerKind, SinkKind, SiteId, SourceKind, Stmt, Unit,
};

/// Runs one session through all three tiers and asserts exact agreement,
/// returning the (shared) outcome.
fn run_three_tiers(
    interp: &Interpreter,
    unit: &Unit,
    requests: &[Request],
) -> Result<Vec<vdbench_corpus::SinkObservation>, ExecError> {
    let oracle = interp.run_session_treewalk(unit, requests);
    let compiled = CompiledUnit::compile(unit);
    let mut scratch = InterpScratch::new();
    let slotwalk = interp.run_compiled_slotwalk(&compiled, requests, &mut scratch);
    let vm = interp.run_compiled(&compiled, requests, &mut scratch);
    assert_eq!(
        slotwalk, oracle,
        "slotwalk diverged from treewalk oracle on unit {}",
        unit.id
    );
    assert_eq!(
        vm, oracle,
        "bytecode VM diverged from treewalk oracle on unit {}",
        unit.id
    );
    oracle
}

/// A request that sets **every** source the unit references to an attack
/// payload (the shape the dynamic scanner sends).
fn attack_request(unit: &Unit) -> Request {
    let mut r = Request::new();
    for (kind, name) in unit.referenced_sources() {
        r = match kind {
            SourceKind::HttpParam => r.with_param(name, "x' OR '1'='1"),
            SourceKind::HttpHeader => r.with_header(name, "x' OR '1'='1"),
            SourceKind::Cookie => r.with_cookie(name, "x' OR '1'='1"),
        };
    }
    r
}

/// A benign request: every referenced source gets a harmless-looking
/// value (still attacker-controlled, so still tainted — but it exercises
/// different gate branches than the attack payload).
fn benign_request(unit: &Unit) -> Request {
    let mut r = Request::new();
    for (kind, name) in unit.referenced_sources() {
        r = match kind {
            SourceKind::HttpParam => r.with_param(name, "42"),
            SourceKind::HttpHeader => r.with_header(name, "curl/8.0"),
            SourceKind::Cookie => r.with_cookie(name, "session-abc"),
        };
    }
    r
}

// ---------------------------------------------------------------------------
// Generated corpora: the production shapes.
// ---------------------------------------------------------------------------

#[test]
fn generated_corpora_agree_across_tiers() {
    let interp = Interpreter::default();
    for seed in [1u64, 7, 42, 0xD5_2015] {
        let corpus = CorpusBuilder::new()
            .units(12)
            .seed(seed)
            .vulnerability_density(0.5)
            .build();
        for unit in corpus.units() {
            // Attack, benign, empty, and a two-request session that mixes
            // them (second-order flows hit the shared store).
            let attack = attack_request(unit);
            let benign = benign_request(unit);
            let _ = run_three_tiers(&interp, unit, std::slice::from_ref(&attack));
            let _ = run_three_tiers(&interp, unit, std::slice::from_ref(&benign));
            let _ = run_three_tiers(&interp, unit, &[Request::new()]);
            let _ = run_three_tiers(&interp, unit, &[benign.clone(), attack.clone()]);
        }
    }
}

#[test]
fn generated_corpora_agree_under_tight_fuel() {
    // Small budgets against real generated units: StepLimit must fire at
    // the identical point on every tier.
    let corpus = CorpusBuilder::new()
        .units(8)
        .seed(9)
        .vulnerability_density(0.5)
        .build();
    for unit in corpus.units() {
        let attack = attack_request(unit);
        for budget in [1usize, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144] {
            let interp = Interpreter::with_limits(budget, 256, 32);
            let _ = run_three_tiers(&interp, unit, std::slice::from_ref(&attack));
        }
    }
}

// ---------------------------------------------------------------------------
// Property-generated programs: every node kind, including malformed ones.
// ---------------------------------------------------------------------------

/// Small pools keep generated programs overlapping: reads frequently hit
/// variables/keys that an earlier statement actually wrote (and sometimes
/// deliberately don't, exercising `UndefinedVariable`).
const VARS: &[&str] = &["a", "b", "c"];
const KEYS: &[&str] = &["k1", "k2"];
const NAMES: &[&str] = &["id", "page", "user-agent"];
const STRS: &[&str] = &["", "x", "42", "asc", "x' OR '1'='1"];
const VALUES: &[&str] = &["", "1", "x' OR '1'='1", "asc"];

fn any_source_kind() -> impl Strategy<Value = SourceKind> {
    prop_oneof![
        Just(SourceKind::HttpParam),
        Just(SourceKind::HttpHeader),
        Just(SourceKind::Cookie),
    ]
}

fn any_sink_kind() -> impl Strategy<Value = SinkKind> {
    prop_oneof![
        Just(SinkKind::SqlQuery),
        Just(SinkKind::HtmlOutput),
        Just(SinkKind::ShellExec),
        Just(SinkKind::FileOpen),
        Just(SinkKind::Authenticate),
        Just(SinkKind::CryptoHash),
    ]
}

fn any_sanitizer_kind() -> impl Strategy<Value = SanitizerKind> {
    prop_oneof![
        Just(SanitizerKind::EscapeSql),
        Just(SanitizerKind::EscapeHtml),
        Just(SanitizerKind::ShellQuote),
        Just(SanitizerKind::NormalizePath),
        Just(SanitizerKind::ValidateInt),
        Just(SanitizerKind::WhitelistCheck),
    ]
}

fn any_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Gt),
        Just(BinOp::Add),
        Just(BinOp::Sub),
    ]
}

fn var_name() -> impl Strategy<Value = String> {
    (0usize..VARS.len()).prop_map(|i| VARS[i].to_string())
}

fn any_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-5i64..6).prop_map(Expr::Int),
        (0usize..STRS.len()).prop_map(|i| Expr::Str(STRS[i].to_string())),
        any::<bool>().prop_map(Expr::Bool),
        var_name().prop_map(Expr::Var),
        (any_source_kind(), 0usize..NAMES.len()).prop_map(|(kind, i)| Expr::Source {
            kind,
            name: NAMES[i].to_string(),
        }),
        (0usize..KEYS.len()).prop_map(|i| Expr::StoreRead {
            key: KEYS[i].to_string(),
        }),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Concat(Box::new(a), Box::new(b))),
            (any_sanitizer_kind(), inner.clone()).prop_map(|(kind, arg)| Expr::Sanitize {
                kind,
                arg: Box::new(arg),
            }),
            (any_binop(), inner.clone(), inner).prop_map(|(op, lhs, rhs)| Expr::BinOp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
        ]
    })
}

/// Statements, recursively: every `Stmt` kind appears, including calls
/// with a wrong callee name or wrong arity (the defined helper takes
/// exactly one parameter).
fn any_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (var_name(), any_expr()).prop_map(|(var, expr)| Stmt::Let { var, expr }),
        (var_name(), any_expr()).prop_map(|(var, expr)| Stmt::Assign { var, expr }),
        (any_sink_kind(), any_expr(), 0u32..4).prop_map(|(kind, arg, sink)| Stmt::Sink {
            kind,
            arg,
            site: SiteId { unit: 0, sink },
        }),
        (
            (any::<bool>(), var_name()).prop_map(|(bind, v)| bind.then_some(v)),
            any::<bool>(),
            proptest::collection::vec(any_expr(), 0..3),
        )
            .prop_map(|(var, defined, args)| Stmt::Call {
                var,
                func: if defined { "helper" } else { "nope" }.to_string(),
                args,
            }),
        any_expr().prop_map(Stmt::Return),
        ((0usize..KEYS.len()), any_expr()).prop_map(|(i, expr)| Stmt::StoreWrite {
            key: KEYS[i].to_string(),
            expr,
        }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                any_expr(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3),
            )
                .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                }),
            (any_expr(), proptest::collection::vec(inner, 0..3))
                .prop_map(|(cond, body)| Stmt::While { cond, body }),
        ]
    })
}

/// A whole unit: an arbitrary handler plus one helper (`helper(p)`) whose
/// body is also arbitrary — so helper-internal sinks, store traffic and
/// nested (possibly recursive) calls all occur.
fn any_unit() -> impl Strategy<Value = Unit> {
    (
        proptest::collection::vec(any_stmt(), 1..6),
        proptest::collection::vec(any_stmt(), 0..4),
    )
        .prop_map(|(handler_body, helper_body)| Unit {
            id: 0,
            handler: Function::new("handler", vec![], handler_body),
            helpers: vec![Function::new("helper", vec!["p".to_string()], helper_body)],
        })
}

fn any_request() -> impl Strategy<Value = Request> {
    proptest::collection::vec(
        (any_source_kind(), 0usize..NAMES.len(), 0usize..VALUES.len()),
        0..4,
    )
    .prop_map(|entries| {
        let mut r = Request::new();
        for (kind, name_i, value_i) in entries {
            let (name, value) = (NAMES[name_i], VALUES[value_i]);
            r = match kind {
                SourceKind::HttpParam => r.with_param(name, value),
                SourceKind::HttpHeader => r.with_header(name, value),
                SourceKind::Cookie => r.with_cookie(name, value),
            };
        }
        r
    })
}

proptest! {
    /// The core property: arbitrary (frequently malformed, frequently
    /// runaway) programs behave identically on all three tiers under a
    /// tight interpreter so every error kind is reachable quickly.
    #[test]
    fn arbitrary_programs_agree_across_tiers(
        unit in any_unit(),
        requests in proptest::collection::vec(any_request(), 1..3),
        budget in 1usize..400,
    ) {
        // Tight loop/depth bounds make runaway shapes terminate fast and
        // make LoopLimit-free semantics (bounded loops) and CallDepth both
        // reachable from small generated programs.
        let interp = Interpreter::with_limits(budget, 8, 4);
        let _ = run_three_tiers(&interp, &unit, &requests);
    }
}

// ---------------------------------------------------------------------------
// Deterministic full-surface unit: every node kind in one program.
// ---------------------------------------------------------------------------

/// Builds a unit that statically contains every statement kind, every
/// expression kind, every operator, every sanitizer, every sink and every
/// source — and runs clean (no errors) so the full observation list is
/// compared.
fn full_surface_unit() -> Unit {
    let site = |sink| SiteId { unit: 0, sink };
    let body = vec![
        // Let + Source(HttpParam) + Concat + Str.
        Stmt::Let {
            var: "a".into(),
            expr: Expr::concat(
                Expr::str("SELECT * FROM t WHERE id="),
                Expr::Source {
                    kind: SourceKind::HttpParam,
                    name: "id".into(),
                },
            ),
        },
        // Sanitize: every kind, folded into one value via Concat.
        Stmt::Let {
            var: "b".into(),
            expr: Expr::concat(
                Expr::sanitize(SanitizerKind::EscapeSql, Expr::var("a")),
                Expr::concat(
                    Expr::sanitize(
                        SanitizerKind::EscapeHtml,
                        Expr::Source {
                            kind: SourceKind::HttpHeader,
                            name: "user-agent".into(),
                        },
                    ),
                    Expr::concat(
                        Expr::sanitize(
                            SanitizerKind::ShellQuote,
                            Expr::Source {
                                kind: SourceKind::Cookie,
                                name: "session".into(),
                            },
                        ),
                        Expr::concat(
                            Expr::sanitize(SanitizerKind::NormalizePath, Expr::str("../etc")),
                            Expr::concat(
                                Expr::sanitize(SanitizerKind::ValidateInt, Expr::str("7")),
                                Expr::sanitize(SanitizerKind::WhitelistCheck, Expr::str("desc")),
                            ),
                        ),
                    ),
                ),
            ),
        },
        // If + BinOp(Eq) + Bool; Assign in both branches.
        Stmt::If {
            cond: Expr::BinOp {
                op: BinOp::Eq,
                lhs: Box::new(Expr::Bool(true)),
                rhs: Box::new(Expr::Bool(true)),
            },
            then_branch: vec![Stmt::Assign {
                var: "a".into(),
                expr: Expr::concat(Expr::var("a"), Expr::str("!")),
            }],
            else_branch: vec![Stmt::Assign {
                var: "a".into(),
                expr: Expr::str("unreachable"),
            }],
        },
        // While + BinOp(Lt/Add) + Int: the counting-loop superinstruction
        // shape.
        Stmt::Let {
            var: "i".into(),
            expr: Expr::Int(0),
        },
        Stmt::While {
            cond: Expr::BinOp {
                op: BinOp::Lt,
                lhs: Box::new(Expr::var("i")),
                rhs: Box::new(Expr::Int(3)),
            },
            body: vec![Stmt::Assign {
                var: "i".into(),
                expr: Expr::BinOp {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::var("i")),
                    rhs: Box::new(Expr::Int(1)),
                },
            }],
        },
        // Remaining operators.
        Stmt::Let {
            var: "c".into(),
            expr: Expr::BinOp {
                op: BinOp::Sub,
                lhs: Box::new(Expr::var("i")),
                rhs: Box::new(Expr::Int(1)),
            },
        },
        Stmt::If {
            cond: Expr::BinOp {
                op: BinOp::Ne,
                lhs: Box::new(Expr::var("c")),
                rhs: Box::new(Expr::Int(99)),
            },
            then_branch: vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Gt,
                    lhs: Box::new(Expr::var("c")),
                    rhs: Box::new(Expr::Int(0)),
                },
                then_branch: vec![],
                else_branch: vec![],
            }],
            else_branch: vec![],
        },
        // StoreWrite / StoreRead: second-order flow through the store.
        Stmt::StoreWrite {
            key: "row".into(),
            expr: Expr::var("a"),
        },
        Stmt::Let {
            var: "stored".into(),
            expr: Expr::StoreRead { key: "row".into() },
        },
        // Call with bind; the helper exercises Return.
        Stmt::Call {
            var: Some("quoted".into()),
            func: "quote".into(),
            args: vec![Expr::var("stored")],
        },
        // Call discarding the result.
        Stmt::Call {
            var: None,
            func: "quote".into(),
            args: vec![Expr::Int(5)],
        },
        // Every sink kind.
        Stmt::Sink {
            kind: SinkKind::SqlQuery,
            arg: Expr::var("a"),
            site: site(0),
        },
        Stmt::Sink {
            kind: SinkKind::HtmlOutput,
            arg: Expr::var("b"),
            site: site(1),
        },
        Stmt::Sink {
            kind: SinkKind::ShellExec,
            arg: Expr::var("quoted"),
            site: site(2),
        },
        Stmt::Sink {
            kind: SinkKind::FileOpen,
            arg: Expr::var("stored"),
            site: site(3),
        },
        Stmt::Sink {
            kind: SinkKind::Authenticate,
            arg: Expr::str("admin"),
            site: site(4),
        },
        Stmt::Sink {
            kind: SinkKind::CryptoHash,
            arg: Expr::str("sha1"),
            site: site(5),
        },
        // A flow whose only taint is correctly sanitized for its sink.
        Stmt::Sink {
            kind: SinkKind::HtmlOutput,
            arg: Expr::sanitize(
                SanitizerKind::EscapeHtml,
                Expr::Source {
                    kind: SourceKind::HttpHeader,
                    name: "user-agent".into(),
                },
            ),
            site: site(6),
        },
        Stmt::Return(Expr::Int(0)),
    ];
    Unit {
        id: 0,
        handler: Function::new("handler", vec![], body),
        helpers: vec![Function::new(
            "quote",
            vec!["v".to_string()],
            vec![Stmt::Return(Expr::concat(
                Expr::str("'"),
                Expr::concat(Expr::var("v"), Expr::str("'")),
            ))],
        )],
    }
}

#[test]
fn full_surface_unit_agrees_and_observes_every_sink() {
    let unit = full_surface_unit();
    let request = Request::new()
        .with_param("id", "1 OR 1=1")
        .with_header("user-agent", "<script>")
        .with_cookie("session", "$(rm)");
    let obs = run_three_tiers(&Interpreter::default(), &unit, &[request])
        .expect("full-surface unit runs clean");
    assert_eq!(obs.len(), 7, "all seven sinks execute: {obs:#?}");
    assert!(obs[0].tainted, "unsanitized sql flow must stay tainted");
    assert_eq!(obs[0].offending_sources, vec!["id".to_string()]);
    // `b` mixes sql-escaped and shell-quoted data into an HTML sink:
    // those sanitizers protect *other* sinks, so the flow stays tainted.
    assert!(obs[1].tainted, "cross-sink sanitizers must not clear taint");
    // The html-escaped header flowing to an HTML sink is clean.
    assert!(!obs[6].tainted, "matching sanitizer must clear taint");
}

// ---------------------------------------------------------------------------
// Dead-guard deferral: compile-time resolution must not reject programs
// whose broken calls never execute.
// ---------------------------------------------------------------------------

/// A unit whose broken call (undefined callee or wrong arity) sits behind
/// `cond`; with `cond` false the unit must run clean on all tiers, with
/// `cond` true it must fail identically on all tiers.
fn gated_broken_call(cond: Expr, call: Stmt) -> Unit {
    Unit {
        id: 0,
        handler: Function::new(
            "handler",
            vec![],
            vec![
                Stmt::If {
                    cond,
                    then_branch: vec![call],
                    else_branch: vec![],
                },
                Stmt::Sink {
                    kind: SinkKind::HtmlOutput,
                    arg: Expr::str("ok"),
                    site: SiteId { unit: 0, sink: 0 },
                },
            ],
        ),
        helpers: vec![Function::new(
            "helper",
            vec!["p".to_string()],
            vec![Stmt::Return(Expr::var("p"))],
        )],
    }
}

#[test]
fn dead_guard_defers_undefined_function_and_arity_checks() {
    let interp = Interpreter::default();
    let undefined = Stmt::Call {
        var: None,
        func: "no_such_helper".into(),
        args: vec![],
    };
    let bad_arity = Stmt::Call {
        var: Some("x".into()),
        func: "helper".into(),
        args: vec![Expr::Int(1), Expr::Int(2)],
    };
    // Const-false gate (folded at compile time) and a runtime-false gate
    // (the branch exists in the bytecode but never executes): both must
    // leave the broken call latent.
    let runtime_false = Expr::BinOp {
        op: BinOp::Eq,
        lhs: Box::new(Expr::Source {
            kind: SourceKind::HttpParam,
            name: "page".into(),
        }),
        rhs: Box::new(Expr::str("never")),
    };
    for cond in [Expr::Bool(false), runtime_false.clone()] {
        for call in [undefined.clone(), bad_arity.clone()] {
            let unit = gated_broken_call(cond.clone(), call);
            let obs = run_three_tiers(&interp, &unit, &[Request::new()])
                .expect("guarded broken call must stay latent");
            assert_eq!(obs.len(), 1, "the sink after the dead guard runs");
        }
    }
    // Reachable versions must fail identically (run_three_tiers asserts
    // the tiers agree; here we also pin *which* error).
    let unit = gated_broken_call(Expr::Bool(true), undefined);
    assert_eq!(
        run_three_tiers(&interp, &unit, &[Request::new()]),
        Err(ExecError::UndefinedFunction("no_such_helper".into()))
    );
    let unit = gated_broken_call(Expr::Bool(true), bad_arity);
    assert_eq!(
        run_three_tiers(&interp, &unit, &[Request::new()]),
        Err(ExecError::ArityMismatch {
            func: "helper".into(),
            expected: 1,
            actual: 2,
        })
    );
}

// ---------------------------------------------------------------------------
// Fuel sweep: ticks are charged at identical points on every tier.
// ---------------------------------------------------------------------------

#[test]
fn fuel_exhaustion_fires_identically_at_every_budget() {
    // A unit that mixes every fuel-relevant construct: a counting loop
    // (batch-charged on the VM), a data-dependent loop, helper calls and
    // concat chains.
    let unit = full_surface_unit();
    let request = Request::new()
        .with_param("id", "1")
        .with_header("user-agent", "ua")
        .with_cookie("session", "s");
    // Find the full cost: the smallest budget where the unit runs clean
    // on the oracle.
    let full_cost = (1..10_000)
        .find(|&steps| {
            Interpreter::with_limits(steps, 256, 32)
                .run_session_treewalk(&unit, std::slice::from_ref(&request))
                .is_ok()
        })
        .expect("unit terminates under the default limits");
    assert!(full_cost > 40, "the sweep should cover a non-trivial range");
    for budget in 1..=full_cost {
        let interp = Interpreter::with_limits(budget, 256, 32);
        let outcome = run_three_tiers(&interp, &unit, std::slice::from_ref(&request));
        // Below the full cost every tier must report StepLimit — never a
        // different error, never a truncated success.
        if budget < full_cost {
            assert_eq!(outcome, Err(ExecError::StepLimit), "budget {budget}");
        } else {
            assert!(outcome.is_ok(), "budget {budget}");
        }
    }
}

#[test]
fn loop_and_depth_limits_fire_identically() {
    let interp_default = Interpreter::default();
    // Loop-iteration sweep on a loop that wants 3 iterations.
    let unit = full_surface_unit();
    let request = Request::new()
        .with_param("id", "1")
        .with_header("user-agent", "ua")
        .with_cookie("session", "s");
    for max_loop_iters in 1..=6 {
        let interp = Interpreter::with_limits(100_000, max_loop_iters, 32);
        let _ = run_three_tiers(&interp, &unit, std::slice::from_ref(&request));
    }
    // Call-depth sweep on self-recursion: `deep()` calls itself forever,
    // so every tier must report CallDepth at the same depth.
    let recursive = Unit {
        id: 0,
        handler: Function::new(
            "handler",
            vec![],
            vec![Stmt::Call {
                var: None,
                func: "deep".into(),
                args: vec![],
            }],
        ),
        helpers: vec![Function::new(
            "deep",
            vec![],
            vec![Stmt::Call {
                var: None,
                func: "deep".into(),
                args: vec![],
            }],
        )],
    };
    for max_depth in 1..=8 {
        let interp = Interpreter::with_limits(100_000, 256, max_depth);
        let outcome = run_three_tiers(&interp, &recursive, &[Request::new()]);
        assert_eq!(outcome, Err(ExecError::CallDepth), "depth {max_depth}");
    }
    // And under the default interpreter too.
    assert_eq!(
        run_three_tiers(&interp_default, &recursive, &[Request::new()]),
        Err(ExecError::CallDepth)
    );
}

// ---------------------------------------------------------------------------
// Frame-pool stability on error paths (the historical leak).
// ---------------------------------------------------------------------------

#[test]
fn failing_sessions_do_not_leak_pooled_frames() {
    // An error raised *inside* a helper call is the leaking shape: the
    // handler frame and the helper frame are both live when execution
    // unwinds.
    let failing = Unit {
        id: 0,
        handler: Function::new(
            "handler",
            vec![],
            vec![Stmt::Call {
                var: None,
                func: "boom".into(),
                args: vec![],
            }],
        ),
        helpers: vec![Function::new(
            "boom",
            vec![],
            vec![Stmt::Let {
                var: "x".into(),
                expr: Expr::var("never_assigned"),
            }],
        )],
    };
    let compiled = CompiledUnit::compile(&failing);
    let interp = Interpreter::default();
    let request = [Request::new()];
    type Runner = fn(
        &Interpreter,
        &CompiledUnit,
        &[Request],
        &mut InterpScratch,
    ) -> Result<Vec<vdbench_corpus::SinkObservation>, ExecError>;
    let tiers: [(&str, Runner); 2] = [
        ("vm", |i, u, r, s| i.run_compiled(u, r, s)),
        ("slotwalk", |i, u, r, s| i.run_compiled_slotwalk(u, r, s)),
    ];
    for (name, run) in tiers {
        let mut scratch = InterpScratch::new();
        // Warm the pool once, then the pooled-frame count must be stable
        // across repeated failing sessions: frames flow pool -> live ->
        // pool even when the session errors.
        let first = run(&interp, &compiled, &request, &mut scratch);
        assert!(matches!(first, Err(ExecError::UndefinedVariable(_))));
        let warmed = scratch.pooled_frames();
        assert!(warmed >= 2, "{name}: handler + helper frames pooled");
        for round in 0..50 {
            let outcome = run(&interp, &compiled, &request, &mut scratch);
            assert!(matches!(outcome, Err(ExecError::UndefinedVariable(_))));
            assert_eq!(
                scratch.pooled_frames(),
                warmed,
                "{name}: pool must not grow on failing round {round}"
            );
        }
    }
    // StepLimit deep in a recursive call tower is the worst case: many
    // live frames unwind at once.
    let tower = Unit {
        id: 0,
        handler: Function::new(
            "handler",
            vec![],
            vec![Stmt::Call {
                var: None,
                func: "spin".into(),
                args: vec![],
            }],
        ),
        helpers: vec![Function::new(
            "spin",
            vec![],
            vec![
                Stmt::Let {
                    var: "i".into(),
                    expr: Expr::Int(0),
                },
                Stmt::While {
                    cond: Expr::BinOp {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::var("i")),
                        rhs: Box::new(Expr::Int(100)),
                    },
                    body: vec![Stmt::Assign {
                        var: "i".into(),
                        expr: Expr::BinOp {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::var("i")),
                            rhs: Box::new(Expr::Int(1)),
                        },
                    }],
                },
                Stmt::Call {
                    var: None,
                    func: "spin".into(),
                    args: vec![],
                },
            ],
        )],
    };
    let compiled = CompiledUnit::compile(&tower);
    let interp = Interpreter::with_limits(500, 256, 32);
    for (name, run) in tiers {
        let mut scratch = InterpScratch::new();
        let first = run(&interp, &compiled, &request, &mut scratch);
        assert_eq!(first, Err(ExecError::StepLimit), "{name}");
        let warmed = scratch.pooled_frames();
        for round in 0..20 {
            let outcome = run(&interp, &compiled, &request, &mut scratch);
            assert_eq!(outcome, Err(ExecError::StepLimit), "{name}");
            assert_eq!(
                scratch.pooled_frames(),
                warmed,
                "{name}: pool must not grow on StepLimit round {round}"
            );
        }
    }
}
