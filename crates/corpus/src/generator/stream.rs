//! Streaming corpus generation.
//!
//! [`CorpusStream`] yields the exact unit sequence [`CorpusBuilder::build`]
//! would produce, in bounded windows, without ever materializing the whole
//! corpus. The builder's `build` loop draws one parent-RNG value per unit
//! (`rng.split("unit-{i}")`); the stream replays the same draw sequence and
//! records each unit's derived seed in a [`UnitPlan`], so materializing any
//! window — or any single unit — is bit-identical to the monolithic path.
//!
//! Each plan also carries a content *fingerprint*:
//! `derive_seed(config_fp ^ unit_seed, index)`, where `config_fp` folds
//! every generator knob except the unit count. Growing a corpus therefore
//! leaves existing fingerprints untouched (only the new tail differs),
//! which is what makes incremental delta rescans exact.

use super::CorpusBuilder;
use crate::corpus::Corpus;
use vdbench_stats::{derive_seed, SeededRng};

/// FNV-1a over a byte string (the repo-wide content-hash primitive).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Continues an FNV-1a state over the decimal digits of `n` — the bytes
/// `format!("{n}")` would append, without the allocation.
fn fold_decimal(mut h: u64, n: u64) -> u64 {
    let mut buf = [0u8; 20];
    let mut pos = buf.len();
    let mut rest = n;
    loop {
        pos -= 1;
        buf[pos] = b'0' + (rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    for &b in &buf[pos..] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds every generator knob *except the unit count* into one hash, so a
/// grown corpus keeps the fingerprints of its existing units.
fn config_fingerprint(b: &CorpusBuilder) -> u64 {
    let mut h = fnv1a_64(b"corpus-config-v1");
    let mut mix = |v: u64| h = derive_seed(h ^ v, 0x5ca1e);
    mix(b.density.to_bits());
    mix(fnv1a_64(format!("{:?}", b.classes).as_bytes()));
    match &b.class_weights {
        None => mix(0),
        Some(ws) => {
            mix(1 + ws.len() as u64);
            for w in ws {
                mix(w.to_bits());
            }
        }
    }
    mix(b.disguise_rate.to_bits());
    mix(b.decoy_rate.to_bits());
    mix(b.interproc_rate.to_bits());
    mix(b.gate_rate.to_bits());
    mix(b.stored_rate.to_bits());
    mix(b.gate_obscurity.to_bits());
    mix(b.noise as u64);
    h
}

/// The identity of one not-yet-materialized unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitPlan {
    /// Global unit index (becomes `Unit::id`).
    pub index: u32,
    /// Seed of the unit's private RNG, exactly as `build()` derives it.
    pub seed: u64,
    /// Content fingerprint: stable across runs and across corpus growth,
    /// changed by any generator knob or seed change that affects the unit.
    pub fingerprint: u64,
}

/// Materializes planned units without holding the stream cursor.
///
/// A [`CorpusStream`] is a *cursor* — `next_plans` mutates the parent RNG
/// — but materialization is a pure function of the plans and the builder
/// configuration. Splitting the two lets a pipelined scanner keep one
/// producer walking the plan sequence while worker threads materialize
/// shards concurrently: the materializer owns only immutable builder
/// state, so it is `Send + Sync` and shareable by reference across a
/// thread scope.
#[derive(Debug, Clone)]
pub struct UnitMaterializer {
    builder: CorpusBuilder,
}

impl UnitMaterializer {
    /// Materializes a contiguous run of plans as a shard whose site ids
    /// stay global ([`Corpus::unit_base`] = the first plan's index) —
    /// bit-identical to [`CorpusStream::materialize`] on the same plans.
    ///
    /// # Panics
    ///
    /// Panics if the plans are not index-contiguous.
    pub fn materialize(&self, plans: &[UnitPlan]) -> Corpus {
        materialize_with(&self.builder, plans)
    }
}

/// Shared materialization body behind [`UnitMaterializer::materialize`]
/// and [`CorpusStream::materialize`].
fn materialize_with(builder: &CorpusBuilder, plans: &[UnitPlan]) -> Corpus {
    let base = plans.first().map_or(0, |p| p.index);
    let mut units = Vec::with_capacity(plans.len());
    let mut sites = Vec::with_capacity(plans.len());
    for (offset, plan) in plans.iter().enumerate() {
        assert_eq!(
            plan.index as usize,
            base as usize + offset,
            "materialize requires index-contiguous plans"
        );
        let mut rng = SeededRng::new(plan.seed);
        let (unit, info) = builder.generate_unit(plan.index, &mut rng);
        units.push(unit);
        sites.push(info);
    }
    Corpus::from_shard(units, sites, builder.seed, base)
}

/// On-demand generator over a [`CorpusBuilder`]'s unit sequence.
///
/// ```
/// use vdbench_corpus::CorpusBuilder;
///
/// let builder = CorpusBuilder::new().units(100).seed(7);
/// let mut stream = builder.stream();
/// let mut shards = 0;
/// let mut units = 0;
/// while let Some(shard) = stream.next_shard(32) {
///     shards += 1;
///     units += shard.units().len();
/// }
/// assert_eq!((shards, units), (4, 100));
/// ```
#[derive(Debug)]
pub struct CorpusStream {
    builder: CorpusBuilder,
    parent: SeededRng,
    next: usize,
    config_fp: u64,
    /// FNV-1a state over the shared `"unit-"` label prefix: `next_plans`
    /// finishes each per-unit label hash by folding only the decimal
    /// digits of the index, sparing the `format!` allocation the
    /// monolithic `build()` loop pays per unit (bit-identical seeds — see
    /// `SeededRng::split_seed_hashed`).
    label_state: u64,
}

impl CorpusStream {
    pub(crate) fn new(builder: CorpusBuilder) -> Self {
        let parent = SeededRng::new(builder.seed);
        let config_fp = config_fingerprint(&builder);
        CorpusStream {
            builder,
            parent,
            next: 0,
            config_fp,
            label_state: fnv1a_64(b"unit-"),
        }
    }

    /// A [`UnitMaterializer`] for this stream's builder configuration —
    /// the thread-safe half of the plan/materialize split.
    pub fn materializer(&self) -> UnitMaterializer {
        UnitMaterializer {
            builder: self.builder.clone(),
        }
    }

    /// Total units the stream will yield.
    pub fn total_units(&self) -> usize {
        self.builder.units
    }

    /// Units not yet yielded.
    pub fn remaining_units(&self) -> usize {
        self.builder.units - self.next
    }

    /// Hash of every generator knob except the unit count (the `base` of
    /// each unit's fingerprint derivation).
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// Yields identities for the next `max` units (fewer at the end of the
    /// stream; empty when exhausted). Consumes one parent-RNG draw per
    /// plan, exactly like the monolithic `build()` loop.
    pub fn next_plans(&mut self, max: usize) -> Vec<UnitPlan> {
        let take = max.min(self.remaining_units());
        let mut plans = Vec::with_capacity(take);
        for _ in 0..take {
            let i = self.next;
            let label_hash = fold_decimal(self.label_state, i as u64);
            let seed = self.parent.split_seed_hashed(label_hash);
            plans.push(UnitPlan {
                index: i as u32,
                seed,
                fingerprint: derive_seed(self.config_fp ^ seed, i as u64),
            });
            self.next += 1;
        }
        plans
    }

    /// Materializes a contiguous run of plans as a shard whose site ids
    /// stay global ([`Corpus::unit_base`] = the first plan's index).
    ///
    /// # Panics
    ///
    /// Panics if the plans are not index-contiguous.
    pub fn materialize(&self, plans: &[UnitPlan]) -> Corpus {
        let base = plans.first().map_or(0, |p| p.index);
        let mut units = Vec::with_capacity(plans.len());
        let mut sites = Vec::with_capacity(plans.len());
        for (offset, plan) in plans.iter().enumerate() {
            assert_eq!(
                plan.index as usize,
                base as usize + offset,
                "materialize requires index-contiguous plans"
            );
            let mut rng = SeededRng::new(plan.seed);
            let (unit, info) = self.builder.generate_unit(plan.index, &mut rng);
            units.push(unit);
            sites.push(info);
        }
        Corpus::from_shard(units, sites, self.builder.seed, base)
    }

    /// Yields the next shard of at most `max` units, or `None` when the
    /// stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `max` is 0.
    pub fn next_shard(&mut self, max: usize) -> Option<Corpus> {
        assert!(max > 0, "shard size must be positive");
        let plans = self.next_plans(max);
        if plans.is_empty() {
            None
        } else {
            Some(self.materialize(&plans))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stream_matches_build_at_any_shard_size() {
        let builder = CorpusBuilder::new().units(53).seed(41);
        let whole = builder.build();
        for shard_size in [1usize, 7, 16, 53, 100] {
            let mut stream = builder.stream();
            let mut units = Vec::new();
            let mut sites = Vec::new();
            while let Some(shard) = stream.next_shard(shard_size) {
                units.extend_from_slice(shard.units());
                sites.extend(shard.sites().cloned());
            }
            let glued = Corpus::from_parts(units, sites, whole.seed());
            assert_eq!(glued, whole, "shard size {shard_size}");
        }
    }

    #[test]
    fn fingerprints_are_stable_under_growth() {
        let small: Vec<_> = CorpusBuilder::new()
            .units(20)
            .seed(9)
            .stream()
            .next_plans(20);
        let big: Vec<_> = CorpusBuilder::new()
            .units(35)
            .seed(9)
            .stream()
            .next_plans(35);
        assert_eq!(&big[..20], &small[..]);
        let other_seed: Vec<_> = CorpusBuilder::new()
            .units(20)
            .seed(10)
            .stream()
            .next_plans(20);
        for (a, b) in small.iter().zip(&other_seed) {
            assert_ne!(a.fingerprint, b.fingerprint, "unit {}", a.index);
        }
    }

    #[test]
    fn knob_changes_move_every_fingerprint() {
        let base: Vec<_> = CorpusBuilder::new()
            .units(10)
            .seed(3)
            .stream()
            .next_plans(10);
        let noisier: Vec<_> = CorpusBuilder::new()
            .units(10)
            .seed(3)
            .noise(9)
            .stream()
            .next_plans(10);
        for (a, b) in base.iter().zip(&noisier) {
            assert_eq!(a.seed, b.seed, "unit seeds depend only on the seed");
            assert_ne!(a.fingerprint, b.fingerprint, "unit {}", a.index);
        }
    }

    #[test]
    fn plan_labels_match_the_allocating_formula() {
        // The digit-folding fast path must draw the exact seeds the
        // `build()` loop derives from `format!("unit-{i}")` labels —
        // including multi-digit and zero indices.
        let builder = CorpusBuilder::new().units(1203).seed(0xFA57);
        let mut parent = SeededRng::new(0xFA57);
        let plans = builder.stream().next_plans(1203);
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(
                plan.seed,
                parent.split_seed(&format!("unit-{i}")),
                "unit {i}"
            );
        }
    }

    #[test]
    fn materializer_matches_stream_and_is_thread_safe() {
        fn assert_thread_safe<T: Send + Sync>() {}
        assert_thread_safe::<UnitMaterializer>();
        assert_thread_safe::<UnitPlan>();
        fn assert_send<T: Send>() {}
        assert_send::<CorpusStream>();

        let builder = CorpusBuilder::new().units(40).seed(0x31A7);
        let mut stream = builder.stream();
        let mat = stream.materializer();
        let plans = stream.next_plans(40);
        assert_eq!(
            mat.materialize(&plans[8..24]),
            stream.materialize(&plans[8..24])
        );
        // Workers materialize concurrently from one shared materializer.
        let shards: Vec<Corpus> = std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .chunks(10)
                .map(|chunk| s.spawn(|| mat.materialize(chunk)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(*shard, stream.materialize(&plans[i * 10..(i + 1) * 10]));
        }
    }

    #[test]
    fn single_unit_materialization_matches_build() {
        let builder = CorpusBuilder::new().units(12).seed(77);
        let whole = builder.build();
        let mut stream = builder.stream();
        let plans = stream.next_plans(12);
        for plan in &plans {
            let one = stream.materialize(std::slice::from_ref(plan));
            assert_eq!(one.units(), &whole.units()[plan.index as usize..][..1]);
        }
    }

    #[test]
    #[should_panic(expected = "index-contiguous")]
    fn non_contiguous_plans_panic() {
        let mut stream = CorpusBuilder::new().units(4).seed(1).stream();
        let plans = stream.next_plans(4);
        let gapped = [plans[0], plans[2]];
        let _ = stream.materialize(&gapped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_stream_is_bit_identical_to_build(
            seed in any::<u64>(),
            units in 0usize..80,
            shard in 1usize..33,
        ) {
            let builder = CorpusBuilder::new().units(units).seed(seed);
            let whole = builder.build();
            let mut stream = builder.stream();
            let mut all_units = Vec::new();
            let mut all_sites = Vec::new();
            while let Some(s) = stream.next_shard(shard) {
                prop_assert!(s.units().len() <= shard);
                all_units.extend_from_slice(s.units());
                all_sites.extend(s.sites().cloned());
            }
            let glued = Corpus::from_parts(all_units, all_sites, seed);
            prop_assert_eq!(glued, whole);
        }
    }
}
