//! Flow-shape recipes: the concrete MiniWeb code the generator emits.
//!
//! Each recipe builds one handler body (plus helpers) containing exactly
//! one sink site, and records a *witness* request proving the site's
//! ground-truth label under the reference interpreter.

use crate::ast::{BinOp, Expr, Function, SiteId, Stmt};
use crate::corpus::AttackSession;
use crate::interp::Request;
use crate::types::{FlowShape, SanitizerKind, SinkKind, SourceKind, VulnClass};
use vdbench_stats::SeededRng;

/// What a recipe produced.
#[derive(Debug, Clone)]
pub struct RecipeOutput {
    /// Handler body statements.
    pub body: Vec<Stmt>,
    /// Helper functions (interprocedural shapes).
    pub helpers: Vec<Function>,
    /// The realized flow shape.
    pub shape: FlowShape,
    /// An attack session reaching the sink and exhibiting the labelled
    /// behaviour; `None` only for statically unreachable sites.
    pub witness: Option<AttackSession>,
}

/// Input-name pools per class, mimicking realistic API surfaces.
fn input_name(class: VulnClass, rng: &mut SeededRng) -> &'static str {
    let pool: &[&'static str] = match class {
        VulnClass::SqlInjection => &["id", "user", "q", "order_id"],
        VulnClass::Xss => &["comment", "name", "message", "title"],
        VulnClass::CommandInjection => &["cmd", "target", "host", "filename"],
        VulnClass::PathTraversal => &["file", "doc", "path", "template"],
        VulnClass::HardcodedCredentials | VulnClass::WeakHash => &["input"],
    };
    pool[rng.index(pool.len())]
}

/// Literal context written in front of the tainted data at the sink.
fn sink_prefix(class: VulnClass) -> &'static str {
    match class {
        VulnClass::SqlInjection => "SELECT * FROM records WHERE key = '",
        VulnClass::Xss => "<div class=\"result\">",
        VulnClass::CommandInjection => "/usr/bin/report --target ",
        VulnClass::PathTraversal => "/srv/app/data/",
        VulnClass::HardcodedCredentials => "",
        VulnClass::WeakHash => "",
    }
}

/// A class-appropriate attack payload for witness requests.
pub fn attack_payload(class: VulnClass) -> &'static str {
    match class {
        VulnClass::SqlInjection => "x' OR '1'='1",
        VulnClass::Xss => "<script>alert(1)</script>",
        VulnClass::CommandInjection => "; cat /etc/passwd",
        VulnClass::PathTraversal => "../../etc/passwd",
        VulnClass::HardcodedCredentials | VulnClass::WeakHash => "",
    }
}

/// Which request surface the tainted input arrives on. Parameters dominate,
/// with occasional header/cookie sources.
fn source_kind(rng: &mut SeededRng) -> SourceKind {
    let r = rng.uniform();
    if r < 0.7 {
        SourceKind::HttpParam
    } else if r < 0.85 {
        SourceKind::HttpHeader
    } else {
        SourceKind::Cookie
    }
}

fn source(kind: SourceKind, name: &str) -> Expr {
    Expr::Source {
        kind,
        name: name.to_string(),
    }
}

/// Common gate values a scanner's dictionary would try, vs obscure tokens
/// it cannot guess.
const COMMON_GATES: [&str; 6] = ["1", "true", "debug", "admin", "yes", "full"];

fn gate_value(obscurity: f64, rng: &mut SeededRng) -> String {
    if rng.bernoulli(obscurity) {
        // An unguessable token.
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        (0..8)
            .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
            .collect()
    } else {
        COMMON_GATES[rng.index(COMMON_GATES.len())].to_string()
    }
}

/// Builds a vulnerable taint-flow recipe of the given shape.
///
/// # Panics
///
/// Panics if called with a non-taint class or non-vulnerable shape
/// (generator invariant).
pub fn vulnerable_recipe(
    class: VulnClass,
    shape: FlowShape,
    site: SiteId,
    gate_obscurity: f64,
    rng: &mut SeededRng,
) -> RecipeOutput {
    assert!(class.is_taint_based(), "taint recipe for pattern class");
    assert!(shape.is_vulnerable(), "vulnerable recipe for safe shape");
    let sink_kind = class.sink();
    let kind = source_kind(rng);
    let name = input_name(class, rng);
    let prefix = sink_prefix(class);
    let mut witness = Request::new();
    witness.set(kind, name, attack_payload(class));

    match shape {
        FlowShape::Direct => RecipeOutput {
            body: vec![Stmt::Sink {
                kind: sink_kind,
                arg: Expr::concat(Expr::str(prefix), source(kind, name)),
                site,
            }],
            helpers: vec![],
            shape,
            witness: Some(vec![witness]),
        },
        FlowShape::Chained => {
            let hops = 1 + rng.index(3);
            let mut body = vec![Stmt::Let {
                var: "v0".into(),
                expr: source(kind, name),
            }];
            let mut last = "v0".to_string();
            for h in 1..=hops {
                let var = format!("v{h}");
                let expr = if h == 1 {
                    Expr::concat(Expr::str(prefix), Expr::var(&last))
                } else {
                    Expr::concat(Expr::var(&last), Expr::str("'"))
                };
                body.push(Stmt::Let {
                    var: var.clone(),
                    expr,
                });
                last = var;
            }
            body.push(Stmt::Sink {
                kind: sink_kind,
                arg: Expr::var(&last),
                site,
            });
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::InputGated => {
            let gate_name = "mode";
            let gate_val = gate_value(gate_obscurity, rng);
            witness.set(SourceKind::HttpParam, gate_name, gate_val.clone());
            let body = vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(source(SourceKind::HttpParam, gate_name)),
                    rhs: Box::new(Expr::str(gate_val)),
                },
                then_branch: vec![Stmt::Sink {
                    kind: sink_kind,
                    arg: Expr::concat(Expr::str(prefix), source(kind, name)),
                    site,
                }],
                else_branch: vec![Stmt::Let {
                    var: "status".into(),
                    expr: Expr::str("forbidden"),
                }],
            }];
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::Interprocedural => {
            let deep = rng.bernoulli(0.4);
            let mut helpers = vec![Function::new(
                "build_arg",
                vec!["x".into()],
                vec![Stmt::Return(Expr::concat(
                    Expr::str(prefix),
                    Expr::var("x"),
                ))],
            )];
            let entry_fn = if deep {
                helpers.push(Function::new(
                    "prepare",
                    vec!["raw".into()],
                    vec![
                        Stmt::Call {
                            var: Some("built".into()),
                            func: "build_arg".into(),
                            args: vec![Expr::var("raw")],
                        },
                        Stmt::Return(Expr::var("built")),
                    ],
                ));
                "prepare"
            } else {
                "build_arg"
            };
            let body = vec![
                Stmt::Call {
                    var: Some("q".into()),
                    func: entry_fn.into(),
                    args: vec![source(kind, name)],
                },
                Stmt::Sink {
                    kind: sink_kind,
                    arg: Expr::var("q"),
                    site,
                },
            ];
            RecipeOutput {
                body,
                helpers,
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::SanitizedMismatch => {
            let wrong = SanitizerKind::mismatched_for(sink_kind)
                .expect("taint sinks have mismatched sanitizers");
            RecipeOutput {
                body: vec![
                    Stmt::Let {
                        var: "clean".into(),
                        expr: Expr::sanitize(wrong, source(kind, name)),
                    },
                    Stmt::Sink {
                        kind: sink_kind,
                        arg: Expr::concat(Expr::str(prefix), Expr::var("clean")),
                        site,
                    },
                ],
                helpers: vec![],
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::SanitizedPartial => {
            let correct =
                SanitizerKind::correct_for(sink_kind).expect("taint sinks have correct sanitizers");
            // The sanitizing path triggers only on strict=1; the witness
            // leaves `strict` unset, taking the vulnerable path.
            let body = vec![
                Stmt::Let {
                    var: "val".into(),
                    expr: source(kind, name),
                },
                Stmt::If {
                    cond: Expr::BinOp {
                        op: BinOp::Eq,
                        lhs: Box::new(source(SourceKind::HttpParam, "strict")),
                        rhs: Box::new(Expr::str("1")),
                    },
                    then_branch: vec![Stmt::Assign {
                        var: "val".into(),
                        expr: Expr::sanitize(correct, Expr::var("val")),
                    }],
                    else_branch: vec![],
                },
                Stmt::Sink {
                    kind: sink_kind,
                    arg: Expr::concat(Expr::str(prefix), Expr::var("val")),
                    site,
                },
            ];
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::LoopCarried => {
            // The tainted input is appended to an accumulator across a
            // bounded loop before hitting the sink — the taint must
            // survive a loop fixpoint to be seen statically.
            let iters = 2 + rng.index(3) as i64;
            let body = vec![
                Stmt::Let {
                    var: "acc".into(),
                    expr: Expr::str(prefix),
                },
                Stmt::Let {
                    var: "i".into(),
                    expr: Expr::Int(0),
                },
                Stmt::While {
                    cond: Expr::BinOp {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::var("i")),
                        rhs: Box::new(Expr::Int(iters)),
                    },
                    body: vec![
                        Stmt::Assign {
                            var: "acc".into(),
                            expr: Expr::concat(
                                Expr::concat(Expr::var("acc"), Expr::str(",")),
                                source(kind, name),
                            ),
                        },
                        Stmt::Assign {
                            var: "i".into(),
                            expr: Expr::BinOp {
                                op: BinOp::Add,
                                lhs: Box::new(Expr::var("i")),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        },
                    ],
                },
                Stmt::Sink {
                    kind: sink_kind,
                    arg: Expr::var("acc"),
                    site,
                },
            ];
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::Stored => {
            let key = store_key(rng);
            // Phase 1 (action=save) persists the raw input; phase 2 (any
            // other request) reads it back into the sink. No single
            // request can both write and trigger — the classic
            // second-order pattern.
            let body = vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(source(SourceKind::HttpParam, "action")),
                    rhs: Box::new(Expr::str("save")),
                },
                then_branch: vec![
                    Stmt::StoreWrite {
                        key: key.to_string(),
                        expr: source(kind, name),
                    },
                    Stmt::Let {
                        var: "ack".into(),
                        expr: Expr::str("saved"),
                    },
                ],
                else_branch: vec![
                    Stmt::Let {
                        var: "stored".into(),
                        expr: Expr::StoreRead {
                            key: key.to_string(),
                        },
                    },
                    Stmt::Sink {
                        kind: sink_kind,
                        arg: Expr::concat(Expr::str(prefix), Expr::var("stored")),
                        site,
                    },
                ],
            }];
            let mut save = witness.clone();
            save.set(SourceKind::HttpParam, "action", "save");
            let trigger = Request::new();
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness: Some(vec![save, trigger]),
            }
        }
        other => unreachable!("vulnerable_recipe got safe shape {other:?}"),
    }
}

/// Store-key pool for second-order flows.
fn store_key(rng: &mut SeededRng) -> &'static str {
    const KEYS: [&str; 4] = ["profile", "bio", "draft", "last_query"];
    KEYS[rng.index(KEYS.len())]
}

/// Builds a safe taint-class recipe of the given shape.
///
/// # Panics
///
/// Panics if called with a vulnerable shape (generator invariant).
pub fn safe_recipe(
    class: VulnClass,
    shape: FlowShape,
    site: SiteId,
    rng: &mut SeededRng,
) -> RecipeOutput {
    assert!(!shape.is_vulnerable(), "safe recipe for vulnerable shape");
    let sink_kind = class.sink();
    let kind = source_kind(rng);
    let name = input_name(class, rng);
    let prefix = sink_prefix(class);
    let mut witness = Request::new();
    witness.set(kind, name, attack_payload(class));

    match shape {
        FlowShape::SanitizedCorrect => {
            let sanitizer = match rng.index(4) {
                0 => SanitizerKind::ValidateInt,
                1 => SanitizerKind::WhitelistCheck,
                _ => SanitizerKind::correct_for(sink_kind)
                    .expect("taint sinks have correct sanitizers"),
            };
            RecipeOutput {
                body: vec![
                    Stmt::Let {
                        var: "clean".into(),
                        expr: Expr::sanitize(sanitizer, source(kind, name)),
                    },
                    Stmt::Sink {
                        kind: sink_kind,
                        arg: Expr::concat(Expr::str(prefix), Expr::var("clean")),
                        site,
                    },
                ],
                helpers: vec![],
                shape,
                witness: Some(vec![witness]),
            }
        }
        FlowShape::LiteralOnly => RecipeOutput {
            body: vec![
                Stmt::Let {
                    var: "fixed".into(),
                    expr: Expr::str("constant-value"),
                },
                Stmt::Sink {
                    kind: sink_kind,
                    arg: Expr::concat(Expr::str(prefix), Expr::var("fixed")),
                    site,
                },
            ],
            helpers: vec![],
            shape,
            // Any request reaches the sink; keep the payload for surface
            // realism.
            witness: Some(vec![witness]),
        },
        FlowShape::DeadGuard => RecipeOutput {
            body: vec![Stmt::If {
                // A constant-false guard a path-insensitive analysis will
                // not evaluate.
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(Expr::Int(1)),
                    rhs: Box::new(Expr::Int(2)),
                },
                then_branch: vec![Stmt::Sink {
                    kind: sink_kind,
                    arg: Expr::concat(Expr::str(prefix), source(kind, name)),
                    site,
                }],
                else_branch: vec![Stmt::Let {
                    var: "audit".into(),
                    expr: Expr::concat(Expr::str("skipped:"), source(kind, name)),
                }],
            }],
            helpers: vec![],
            shape,
            witness: None,
        },
        FlowShape::StoredLiteral => {
            let key = store_key(rng);
            let body = vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(source(SourceKind::HttpParam, "action")),
                    rhs: Box::new(Expr::str("save")),
                },
                then_branch: vec![Stmt::StoreWrite {
                    key: key.to_string(),
                    expr: Expr::str("default-profile"),
                }],
                else_branch: vec![
                    Stmt::Let {
                        var: "stored".into(),
                        expr: Expr::StoreRead {
                            key: key.to_string(),
                        },
                    },
                    Stmt::Sink {
                        kind: sink_kind,
                        arg: Expr::concat(Expr::str(prefix), Expr::var("stored")),
                        site,
                    },
                ],
            }];
            let save = Request::new().with_param("action", "save");
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness: Some(vec![save, witness]),
            }
        }
        other => unreachable!("safe_recipe got vulnerable shape {other:?}"),
    }
}

/// Builds a pattern-class (credentials / weak-hash) recipe.
pub fn pattern_recipe(
    class: VulnClass,
    vulnerable: bool,
    site: SiteId,
    rng: &mut SeededRng,
) -> RecipeOutput {
    let shape = if vulnerable {
        FlowShape::BadConfiguration
    } else {
        FlowShape::GoodConfiguration
    };
    let witness = Some(vec![
        Request::new().with_header("authorization", "Bearer token")
    ]);
    match class {
        VulnClass::HardcodedCredentials => {
            let body = if vulnerable {
                const LEAKED: [&str; 4] = ["s3cr3t!", "admin123", "hunter2", "changeme"];
                vec![
                    Stmt::Let {
                        var: "password".into(),
                        expr: Expr::str(LEAKED[rng.index(LEAKED.len())]),
                    },
                    Stmt::Sink {
                        kind: SinkKind::Authenticate,
                        arg: Expr::var("password"),
                        site,
                    },
                ]
            } else {
                vec![Stmt::Sink {
                    kind: SinkKind::Authenticate,
                    arg: Expr::Source {
                        kind: SourceKind::HttpHeader,
                        name: "authorization".into(),
                    },
                    site,
                }]
            };
            RecipeOutput {
                body,
                helpers: vec![],
                shape,
                witness,
            }
        }
        VulnClass::WeakHash => {
            let algo = if vulnerable {
                const WEAK: [&str; 3] = ["md5", "sha1", "crc32"];
                WEAK[rng.index(WEAK.len())]
            } else {
                const STRONG: [&str; 3] = ["sha256", "sha512", "bcrypt"];
                STRONG[rng.index(STRONG.len())]
            };
            RecipeOutput {
                body: vec![Stmt::Sink {
                    kind: SinkKind::CryptoHash,
                    arg: Expr::str(algo),
                    site,
                }],
                helpers: vec![],
                shape,
                witness,
            }
        }
        other => unreachable!("pattern_recipe got taint class {other:?}"),
    }
}

/// Sprinkles self-contained noise statements into a body at random
/// positions. Noise never touches the flow's variables or adds sinks; it
/// exists to give analyzers realistic code to wade through and to widen the
/// crawlable input surface.
pub fn inject_noise(body: &mut Vec<Stmt>, max_noise: usize, rng: &mut SeededRng) {
    if max_noise == 0 {
        return;
    }
    let count = rng.index(max_noise + 1);
    for i in 0..count {
        let stmt = make_noise_stmt(i, rng);
        let pos = rng.index(body.len() + 1);
        body.insert(pos, stmt);
    }
}

fn make_noise_stmt(i: usize, rng: &mut SeededRng) -> Stmt {
    match rng.index(4) {
        0 => Stmt::Let {
            var: format!("n{i}"),
            expr: Expr::Int(rng.index(1000) as i64),
        },
        1 => Stmt::Let {
            var: format!("log{i}"),
            expr: Expr::concat(
                Expr::str("request from "),
                Expr::Source {
                    kind: SourceKind::HttpHeader,
                    name: "user-agent".into(),
                },
            ),
        },
        2 => Stmt::If {
            cond: Expr::BinOp {
                op: BinOp::Gt,
                lhs: Box::new(Expr::Source {
                    kind: SourceKind::HttpParam,
                    name: "page".into(),
                }),
                rhs: Box::new(Expr::Int(0)),
            },
            then_branch: vec![Stmt::Let {
                var: format!("offset{i}"),
                expr: Expr::Int(20),
            }],
            else_branch: vec![Stmt::Let {
                var: format!("offset{i}"),
                expr: Expr::Int(0),
            }],
        },
        _ => {
            // A self-contained terminating counter loop (wrapped in an If
            // so the counter initialization travels with the loop).
            let counter = format!("c{i}");
            Stmt::If {
                cond: Expr::Bool(true),
                then_branch: vec![
                    Stmt::Let {
                        var: counter.clone(),
                        expr: Expr::Int(0),
                    },
                    Stmt::While {
                        cond: Expr::BinOp {
                            op: BinOp::Lt,
                            lhs: Box::new(Expr::var(&counter)),
                            rhs: Box::new(Expr::Int(3)),
                        },
                        body: vec![Stmt::Assign {
                            var: counter.clone(),
                            expr: Expr::BinOp {
                                op: BinOp::Add,
                                lhs: Box::new(Expr::var(&counter)),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        }],
                    },
                ],
                else_branch: vec![],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> SiteId {
        SiteId { unit: 0, sink: 0 }
    }

    #[test]
    fn payloads_are_class_appropriate() {
        assert!(attack_payload(VulnClass::SqlInjection).contains('\''));
        assert!(attack_payload(VulnClass::Xss).contains("<script>"));
        assert!(attack_payload(VulnClass::CommandInjection).starts_with(';'));
        assert!(attack_payload(VulnClass::PathTraversal).contains("../"));
    }

    #[test]
    fn direct_recipe_shape() {
        let mut rng = SeededRng::new(1);
        let out = vulnerable_recipe(
            VulnClass::SqlInjection,
            FlowShape::Direct,
            site(),
            0.5,
            &mut rng,
        );
        assert_eq!(out.body.len(), 1);
        assert!(out.helpers.is_empty());
        assert!(out.witness.is_some());
        assert!(matches!(out.body[0], Stmt::Sink { .. }));
    }

    #[test]
    fn interprocedural_recipe_has_helpers() {
        let mut rng = SeededRng::new(2);
        let out = vulnerable_recipe(
            VulnClass::CommandInjection,
            FlowShape::Interprocedural,
            site(),
            0.5,
            &mut rng,
        );
        assert!(!out.helpers.is_empty());
    }

    #[test]
    fn dead_guard_has_no_witness() {
        let mut rng = SeededRng::new(3);
        let out = safe_recipe(VulnClass::Xss, FlowShape::DeadGuard, site(), &mut rng);
        assert!(out.witness.is_none());
        assert!(!out.shape.is_vulnerable());
    }

    #[test]
    #[should_panic(expected = "safe shape")]
    fn vulnerable_recipe_rejects_safe_shape() {
        let mut rng = SeededRng::new(4);
        let _ = vulnerable_recipe(
            VulnClass::Xss,
            FlowShape::LiteralOnly,
            site(),
            0.5,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "vulnerable shape")]
    fn safe_recipe_rejects_vulnerable_shape() {
        let mut rng = SeededRng::new(4);
        let _ = safe_recipe(VulnClass::Xss, FlowShape::Direct, site(), &mut rng);
    }

    #[test]
    fn pattern_recipes() {
        let mut rng = SeededRng::new(5);
        let bad = pattern_recipe(VulnClass::WeakHash, true, site(), &mut rng);
        assert_eq!(bad.shape, FlowShape::BadConfiguration);
        let good = pattern_recipe(VulnClass::HardcodedCredentials, false, site(), &mut rng);
        assert_eq!(good.shape, FlowShape::GoodConfiguration);
    }

    #[test]
    fn noise_is_bounded_and_positionally_random() {
        let mut rng = SeededRng::new(6);
        let mut body = vec![Stmt::Let {
            var: "keep".into(),
            expr: Expr::Int(1),
        }];
        inject_noise(&mut body, 5, &mut rng);
        assert!(body.len() <= 6);
        // The original statement survives.
        assert!(body
            .iter()
            .any(|s| matches!(s, Stmt::Let { var, .. } if var == "keep")));
        // Zero noise is a no-op.
        let mut b2 = body.clone();
        inject_noise(&mut b2, 0, &mut rng);
        assert_eq!(b2.len(), body.len());
    }

    #[test]
    fn gate_values_mix_common_and_obscure() {
        let mut rng = SeededRng::new(7);
        let mut common = 0;
        for _ in 0..200 {
            let v = gate_value(0.5, &mut rng);
            if COMMON_GATES.contains(&v.as_str()) {
                common += 1;
            } else {
                assert_eq!(v.len(), 8);
            }
        }
        assert!(common > 60 && common < 140, "common={common}");
    }
}
