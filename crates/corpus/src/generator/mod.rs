//! The seeded corpus generator.
//!
//! [`CorpusBuilder`] turns a handful of knobs (unit count, vulnerability
//! density, class mix, flow-shape tendencies) into a deterministic corpus
//! with construction-time ground truth. The actual code shapes live in
//! [`recipes`].

pub mod recipes;
pub mod stream;

use crate::ast::{SiteId, Unit};
use crate::corpus::{Corpus, SiteInfo};
use crate::types::{FlowShape, VulnClass};
use recipes::{pattern_recipe, safe_recipe, vulnerable_recipe, RecipeOutput};
use vdbench_stats::SeededRng;

/// Builder for deterministic MiniWeb corpora.
///
/// ```
/// use vdbench_corpus::CorpusBuilder;
///
/// let corpus = CorpusBuilder::new()
///     .units(200)
///     .vulnerability_density(0.25)
///     .seed(7)
///     .build();
/// let stats = corpus.stats();
/// assert_eq!(stats.units, 200);
/// // Achieved prevalence is binomially distributed around the target.
/// assert!((stats.prevalence - 0.25).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    units: usize,
    density: f64,
    classes: Vec<VulnClass>,
    /// Sampling weight per entry of `classes` (parallel vector; uniform
    /// when `None`).
    class_weights: Option<Vec<f64>>,
    seed: u64,
    /// Probability that a vulnerable taint flow hides behind a mismatched
    /// or partial sanitizer (disguised vulnerabilities).
    disguise_rate: f64,
    /// Probability that a safe taint site is a dead-guard decoy (static
    /// false-positive bait) rather than a sanitized or literal flow.
    decoy_rate: f64,
    /// Probability that a flow crosses a helper function.
    interproc_rate: f64,
    /// Probability that a vulnerable sink hides behind an input gate.
    gate_rate: f64,
    /// Probability that a vulnerable taint flow is second-order (persisted
    /// through the store and triggered by a later request).
    stored_rate: f64,
    /// Probability that an input gate uses an obscure random token rather
    /// than a guessable common value (drives dynamic-scanner misses).
    gate_obscurity: f64,
    /// Maximum extra noise statements per unit.
    noise: usize,
}

impl Default for CorpusBuilder {
    fn default() -> Self {
        CorpusBuilder {
            units: 100,
            density: 0.3,
            classes: VulnClass::all().to_vec(),
            class_weights: None,
            seed: 0xC0FFEE,
            disguise_rate: 0.25,
            decoy_rate: 0.3,
            interproc_rate: 0.25,
            gate_rate: 0.2,
            stored_rate: 0.12,
            gate_obscurity: 0.5,
            noise: 4,
        }
    }
}

impl CorpusBuilder {
    /// Creates a builder with the default profile (100 units, 30% density,
    /// all classes).
    pub fn new() -> Self {
        CorpusBuilder::default()
    }

    /// Sets the number of code units (= benchmark cases).
    pub fn units(mut self, units: usize) -> Self {
        self.units = units;
        self
    }

    /// Sets the target fraction of vulnerable units.
    ///
    /// # Panics
    ///
    /// Panics unless `density` is in `[0, 1]`.
    pub fn vulnerability_density(mut self, density: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        self.density = density;
        self
    }

    /// Restricts the vulnerability classes to inject (uniform mix; any
    /// previously set weights are cleared).
    ///
    /// # Panics
    ///
    /// Panics on an empty class list.
    pub fn classes(mut self, classes: Vec<VulnClass>) -> Self {
        assert!(!classes.is_empty(), "class list must be non-empty");
        self.classes = classes;
        self.class_weights = None;
        self
    }

    /// Sets a weighted class mix — e.g. the SQLi/XSS-dominated profile of
    /// typical web applications.
    ///
    /// # Panics
    ///
    /// Panics on an empty mix or non-positive weights.
    pub fn class_mix(mut self, mix: Vec<(VulnClass, f64)>) -> Self {
        assert!(!mix.is_empty(), "class mix must be non-empty");
        assert!(
            mix.iter().all(|(_, w)| w.is_finite() && *w > 0.0),
            "class weights must be positive"
        );
        self.classes = mix.iter().map(|(c, _)| *c).collect();
        self.class_weights = Some(mix.into_iter().map(|(_, w)| w).collect());
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the disguised-vulnerability rate (mismatched/partial
    /// sanitizers).
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn disguise_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.disguise_rate = rate;
        self
    }

    /// Sets the dead-guard decoy rate among safe sites.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn decoy_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.decoy_rate = rate;
        self
    }

    /// Sets the interprocedural-flow rate.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn interproc_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.interproc_rate = rate;
        self
    }

    /// Sets the input-gating rate for vulnerable flows.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn gate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.gate_rate = rate;
        self
    }

    /// Sets the second-order (stored) flow rate for vulnerable flows.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn stored_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.stored_rate = rate;
        self
    }

    /// Sets how often gates use obscure (unguessable) values.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn gate_obscurity(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.gate_obscurity = rate;
        self
    }

    /// Sets the maximum number of noise statements per unit.
    pub fn noise(mut self, noise: usize) -> Self {
        self.noise = noise;
        self
    }

    /// Generates the corpus.
    pub fn build(&self) -> Corpus {
        let mut rng = SeededRng::new(self.seed);
        let mut units = Vec::with_capacity(self.units);
        let mut sites = Vec::with_capacity(self.units);
        for i in 0..self.units {
            let mut unit_rng = rng.split(&format!("unit-{i}"));
            let (unit, info) = self.generate_unit(i as u32, &mut unit_rng);
            units.push(unit);
            sites.push(info);
        }
        Corpus::from_parts(units, sites, self.seed)
    }

    /// Streams the same corpus [`build`](Self::build) would produce in
    /// bounded shards, without materializing it whole. See
    /// [`stream::CorpusStream`].
    pub fn stream(&self) -> stream::CorpusStream {
        stream::CorpusStream::new(self.clone())
    }

    fn generate_unit(&self, id: u32, rng: &mut SeededRng) -> (Unit, SiteInfo) {
        let vulnerable = rng.bernoulli(self.density);
        let class = match &self.class_weights {
            Some(weights) => {
                let idx = rng
                    .choose_weighted(weights)
                    .expect("weights validated positive");
                self.classes[idx]
            }
            None => *rng.choose(&self.classes),
        };
        let site = SiteId { unit: id, sink: 0 };

        let output: RecipeOutput = if !class.is_taint_based() {
            pattern_recipe(class, vulnerable, site, rng)
        } else if vulnerable {
            let shape = self.pick_vulnerable_shape(rng);
            vulnerable_recipe(class, shape, site, self.gate_obscurity, rng)
        } else {
            let shape = self.pick_safe_shape(rng);
            safe_recipe(class, shape, site, rng)
        };

        let mut body = output.body;
        recipes::inject_noise(&mut body, self.noise, rng);

        let unit = Unit {
            id,
            handler: crate::ast::Function::new(format!("handler_{id}"), vec![], body),
            helpers: output.helpers,
        };
        let info = SiteInfo {
            site,
            class,
            vulnerable: output.shape.is_vulnerable(),
            shape: output.shape,
            witness: output.witness,
        };
        (unit, info)
    }

    fn pick_vulnerable_shape(&self, rng: &mut SeededRng) -> FlowShape {
        if rng.bernoulli(self.stored_rate) {
            FlowShape::Stored
        } else if rng.bernoulli(self.disguise_rate) {
            if rng.bernoulli(0.5) {
                FlowShape::SanitizedMismatch
            } else {
                FlowShape::SanitizedPartial
            }
        } else if rng.bernoulli(self.gate_rate) {
            FlowShape::InputGated
        } else if rng.bernoulli(self.interproc_rate) {
            FlowShape::Interprocedural
        } else {
            match rng.index(5) {
                0 | 1 => FlowShape::Direct,
                2 | 3 => FlowShape::Chained,
                _ => FlowShape::LoopCarried,
            }
        }
    }

    fn pick_safe_shape(&self, rng: &mut SeededRng) -> FlowShape {
        if rng.bernoulli(self.decoy_rate) {
            FlowShape::DeadGuard
        } else if rng.bernoulli(self.stored_rate) {
            FlowShape::StoredLiteral
        } else if rng.bernoulli(0.35) {
            FlowShape::LiteralOnly
        } else {
            FlowShape::SanitizedCorrect
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, Request};

    #[test]
    fn deterministic_given_seed() {
        let a = CorpusBuilder::new().units(30).seed(5).build();
        let b = CorpusBuilder::new().units(30).seed(5).build();
        assert_eq!(a, b);
        let c = CorpusBuilder::new().units(30).seed(6).build();
        assert_ne!(a, c);
    }

    #[test]
    fn density_respected() {
        let corpus = CorpusBuilder::new()
            .units(2000)
            .vulnerability_density(0.3)
            .seed(11)
            .build();
        let stats = corpus.stats();
        assert!(
            (stats.prevalence - 0.3).abs() < 0.04,
            "prevalence {}",
            stats.prevalence
        );
        let zero = CorpusBuilder::new()
            .units(50)
            .vulnerability_density(0.0)
            .seed(1)
            .build();
        assert_eq!(zero.stats().vulnerable_sites, 0);
        let full = CorpusBuilder::new()
            .units(50)
            .vulnerability_density(1.0)
            .seed(1)
            .build();
        assert_eq!(full.stats().vulnerable_sites, 50);
    }

    #[test]
    fn one_site_per_unit() {
        let corpus = CorpusBuilder::new().units(40).seed(3).build();
        assert_eq!(corpus.site_count(), 40);
        for unit in corpus.units() {
            assert_eq!(unit.sinks().len(), 1, "unit {} sinks", unit.id);
        }
    }

    #[test]
    fn class_mix_weights_respected() {
        let corpus = CorpusBuilder::new()
            .units(3000)
            .class_mix(vec![
                (VulnClass::SqlInjection, 6.0),
                (VulnClass::Xss, 3.0),
                (VulnClass::WeakHash, 1.0),
            ])
            .seed(12)
            .build();
        let stats = corpus.stats();
        let sql = stats.by_class[&VulnClass::SqlInjection].total as f64;
        let xss = stats.by_class[&VulnClass::Xss].total as f64;
        let hash = stats.by_class[&VulnClass::WeakHash].total as f64;
        assert!((sql / xss - 2.0).abs() < 0.3, "sql/xss = {}", sql / xss);
        assert!((xss / hash - 3.0).abs() < 0.8, "xss/hash = {}", xss / hash);
        assert_eq!(stats.by_class.len(), 3);
        // `classes` clears weights again.
        let uniform = CorpusBuilder::new()
            .units(100)
            .class_mix(vec![(VulnClass::SqlInjection, 9.0), (VulnClass::Xss, 1.0)])
            .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
            .seed(12)
            .build();
        let s = uniform.stats();
        let ratio = s.by_class[&VulnClass::SqlInjection].total as f64
            / s.by_class[&VulnClass::Xss].total as f64;
        assert!(ratio < 2.0, "uniform after classes(): {ratio}");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn class_mix_rejects_bad_weights() {
        let _ = CorpusBuilder::new().class_mix(vec![(VulnClass::Xss, 0.0)]);
    }

    #[test]
    fn class_restriction() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .classes(vec![VulnClass::SqlInjection])
            .seed(9)
            .build();
        for s in corpus.sites() {
            assert_eq!(s.class, VulnClass::SqlInjection);
        }
    }

    #[test]
    fn ground_truth_verified_by_interpreter() {
        // For every site with a witness, executing the witness must
        // reproduce the label: vulnerable sites show taint at the sink,
        // safe reachable taint sites do not.
        let corpus = CorpusBuilder::new()
            .units(300)
            .vulnerability_density(0.4)
            .seed(21)
            .build();
        let interp = Interpreter::default();
        let mut verified = 0;
        for info in corpus.sites() {
            let Some(witness) = &info.witness else {
                assert_eq!(
                    info.shape,
                    crate::types::FlowShape::DeadGuard,
                    "only dead guards lack witnesses"
                );
                continue;
            };
            let unit = corpus.unit_of(info.site).unwrap();
            let obs = interp
                .run_session(unit, witness)
                .unwrap_or_else(|e| panic!("unit {} failed to execute: {e}", unit.id));
            let at_site: Vec<_> = obs.iter().filter(|o| o.site == info.site).collect();
            assert!(
                !at_site.is_empty(),
                "witness for {} did not reach the sink (shape {:?})",
                info.site,
                info.shape
            );
            if info.class.is_taint_based() {
                let observed_tainted = at_site.iter().any(|o| o.tainted);
                assert_eq!(
                    observed_tainted, info.vulnerable,
                    "ground truth mismatch at {} (shape {:?})",
                    info.site, info.shape
                );
            }
            verified += 1;
        }
        assert!(verified > 200, "verified only {verified} sites");
    }

    #[test]
    fn dead_guards_never_execute() {
        let corpus = CorpusBuilder::new()
            .units(200)
            .vulnerability_density(0.0)
            .decoy_rate(1.0)
            .classes(vec![
                VulnClass::SqlInjection,
                VulnClass::Xss,
                VulnClass::CommandInjection,
                VulnClass::PathTraversal,
            ])
            .seed(33)
            .build();
        let interp = Interpreter::default();
        for info in corpus.sites() {
            assert_eq!(info.shape, crate::types::FlowShape::DeadGuard);
            let unit = corpus.unit_of(info.site).unwrap();
            // Even a fully hostile request cannot reach the sink.
            let mut req = Request::new();
            for (kind, name) in unit.referenced_sources() {
                req.set(kind, name, "' OR 1=1 --");
            }
            let obs = interp.run(unit, &req).unwrap();
            assert!(obs.iter().all(|o| o.site != info.site));
        }
    }

    #[test]
    fn noise_increases_code_size() {
        let quiet = CorpusBuilder::new().units(50).noise(0).seed(2).build();
        let noisy = CorpusBuilder::new().units(50).noise(10).seed(2).build();
        assert!(noisy.stats().total_statements > quiet.stats().total_statements);
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn bad_density_panics() {
        let _ = CorpusBuilder::new().vulnerability_density(1.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_classes_panics() {
        let _ = CorpusBuilder::new().classes(vec![]);
    }

    #[test]
    fn shape_mix_controls() {
        let disguised = CorpusBuilder::new()
            .units(200)
            .vulnerability_density(1.0)
            .disguise_rate(1.0)
            .stored_rate(0.0)
            .classes(vec![VulnClass::SqlInjection])
            .seed(4)
            .build();
        for s in disguised.sites() {
            assert!(matches!(
                s.shape,
                crate::types::FlowShape::SanitizedMismatch
                    | crate::types::FlowShape::SanitizedPartial
            ));
        }
        let plain = CorpusBuilder::new()
            .units(100)
            .vulnerability_density(1.0)
            .disguise_rate(0.0)
            .gate_rate(0.0)
            .interproc_rate(0.0)
            .stored_rate(0.0)
            .classes(vec![VulnClass::Xss])
            .seed(4)
            .build();
        for s in plain.sites() {
            assert!(matches!(
                s.shape,
                crate::types::FlowShape::Direct
                    | crate::types::FlowShape::Chained
                    | crate::types::FlowShape::LoopCarried
            ));
        }
    }
}
