//! Pretty-printer rendering MiniWeb units as readable pseudo-code.
//!
//! Used by examples and diagnostics so humans can inspect what the
//! generator produced and what a detector flagged.

use crate::ast::{Expr, Function, Stmt, Unit};
use std::fmt::Write as _;

/// Renders a whole unit (handler followed by helpers).
pub fn unit_to_string(unit: &Unit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// unit {}", unit.id);
    function_to_string_into(&unit.handler, &mut out);
    for helper in &unit.helpers {
        out.push('\n');
        function_to_string_into(helper, &mut out);
    }
    out
}

/// Renders one function.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    function_to_string_into(f, &mut out);
    out
}

fn function_to_string_into(f: &Function, out: &mut String) {
    let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
    for stmt in &f.body {
        stmt_into(stmt, 1, out);
    }
    let _ = writeln!(out, "}}");
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn stmt_into(stmt: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match stmt {
        Stmt::Let { var, expr } => {
            let _ = writeln!(out, "let {var} = {};", expr_to_string(expr));
        }
        Stmt::Assign { var, expr } => {
            let _ = writeln!(out, "{var} = {};", expr_to_string(expr));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if {} {{", expr_to_string(cond));
            for s in then_branch {
                stmt_into(s, depth + 1, out);
            }
            if else_branch.is_empty() {
                indent(depth, out);
                let _ = writeln!(out, "}}");
            } else {
                indent(depth, out);
                let _ = writeln!(out, "}} else {{");
                for s in else_branch {
                    stmt_into(s, depth + 1, out);
                }
                indent(depth, out);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while {} {{", expr_to_string(cond));
            for s in body {
                stmt_into(s, depth + 1, out);
            }
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        Stmt::Sink { kind, arg, site } => {
            let _ = writeln!(
                out,
                "{}({});  // site {site}",
                kind.keyword(),
                expr_to_string(arg)
            );
        }
        Stmt::Call { var, func, args } => {
            let args: Vec<String> = args.iter().map(expr_to_string).collect();
            match var {
                Some(v) => {
                    let _ = writeln!(out, "let {v} = {func}({});", args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{func}({});", args.join(", "));
                }
            }
        }
        Stmt::Return(expr) => {
            let _ = writeln!(out, "return {};", expr_to_string(expr));
        }
        Stmt::StoreWrite { key, expr } => {
            let _ = writeln!(out, "store_write({key:?}, {});", expr_to_string(expr));
        }
    }
}

/// Renders an expression.
pub fn expr_to_string(expr: &Expr) -> String {
    match expr {
        Expr::Int(i) => i.to_string(),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Source { kind, name } => format!("{}({name:?})", kind.keyword()),
        Expr::Concat(a, b) => format!("{} + {}", expr_to_string(a), expr_to_string(b)),
        Expr::Sanitize { kind, arg } => {
            format!("{}({})", kind.keyword(), expr_to_string(arg))
        }
        Expr::BinOp { op, lhs, rhs } => format!(
            "({} {} {})",
            expr_to_string(lhs),
            op.symbol(),
            expr_to_string(rhs)
        ),
        Expr::StoreRead { key } => format!("store_read({key:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, SiteId};
    use crate::types::{SanitizerKind, SinkKind, SourceKind};

    #[test]
    fn renders_expressions() {
        let e = Expr::concat(
            Expr::str("SELECT "),
            Expr::sanitize(
                SanitizerKind::EscapeSql,
                Expr::Source {
                    kind: SourceKind::HttpParam,
                    name: "id".into(),
                },
            ),
        );
        assert_eq!(
            expr_to_string(&e),
            "\"SELECT \" + escape_sql(param(\"id\"))"
        );
        let cond = Expr::BinOp {
            op: BinOp::Gt,
            lhs: Box::new(Expr::var("x")),
            rhs: Box::new(Expr::Int(5)),
        };
        assert_eq!(expr_to_string(&cond), "(x > 5)");
    }

    #[test]
    fn renders_full_unit() {
        let unit = Unit {
            id: 7,
            handler: Function::new(
                "handler_7",
                vec![],
                vec![
                    Stmt::Let {
                        var: "q".into(),
                        expr: Expr::str("x"),
                    },
                    Stmt::If {
                        cond: Expr::Bool(true),
                        then_branch: vec![Stmt::Sink {
                            kind: SinkKind::SqlQuery,
                            arg: Expr::var("q"),
                            site: SiteId { unit: 7, sink: 0 },
                        }],
                        else_branch: vec![Stmt::Return(Expr::Int(0))],
                    },
                    Stmt::While {
                        cond: Expr::Bool(false),
                        body: vec![Stmt::Assign {
                            var: "q".into(),
                            expr: Expr::str("y"),
                        }],
                    },
                    Stmt::Call {
                        var: Some("r".into()),
                        func: "help".into(),
                        args: vec![Expr::var("q")],
                    },
                    Stmt::Call {
                        var: None,
                        func: "log".into(),
                        args: vec![],
                    },
                ],
            ),
            helpers: vec![Function::new(
                "help",
                vec!["a".into()],
                vec![Stmt::Return(Expr::var("a"))],
            )],
        };
        let text = unit_to_string(&unit);
        assert!(text.contains("// unit 7"));
        assert!(text.contains("fn handler_7()"));
        assert!(text.contains("sql_query(q);  // site u7:s0"));
        assert!(text.contains("} else {"));
        assert!(text.contains("while false {"));
        assert!(text.contains("let r = help(q);"));
        assert!(text.contains("log();"));
        assert!(text.contains("fn help(a)"));
        assert!(text.contains("return a;"));
    }

    #[test]
    fn generated_units_render_without_panic() {
        let corpus = crate::CorpusBuilder::new().units(20).seed(8).build();
        for unit in corpus.units() {
            let text = unit_to_string(unit);
            assert!(text.contains(&format!("fn handler_{}", unit.id)));
        }
    }
}
