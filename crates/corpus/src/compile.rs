//! Slot-compiled MiniWeb units: name interning, call resolution, and the
//! mid-tier walker behind the bytecode VM.
//!
//! The reference interpreter in [`crate::interp`] walks the AST and keeps
//! each function's environment in a `BTreeMap<String, Value>`, so every
//! variable read and write pays a string comparison chain and every call
//! clones the callee body to appease the borrow checker. Under the dynamic
//! scanner a single corpus scan executes the same handful of units tens of
//! thousands of times, which makes those lookups and clones the hottest
//! code in the workspace.
//!
//! Execution now has **three tiers**, each bit-identical to the next:
//!
//! 1. [`Interpreter::run_session_treewalk`] — the AST oracle defining the
//!    semantics;
//! 2. [`Interpreter::run_compiled_slotwalk`] — the slot-compiled walker in
//!    this module (retained as the mid-tier oracle for the equivalence
//!    suite);
//! 3. [`Interpreter::run_compiled`] — the flat bytecode register VM in
//!    `crate::bytecode`, the production path compiled from the
//!    slot-compiled form.
//!
//! Compilation removes the lookup and clone costs while preserving the
//! reference semantics *exactly*:
//!
//! * **Name interning** — every variable and parameter name in a function
//!   is assigned a dense slot index at compile time (parameters first, then
//!   first textual occurrence). Environments become `Vec<Option<Value>>`
//!   frames indexed directly; `None` marks a never-assigned slot so
//!   [`ExecError::UndefinedVariable`] still fires with the original name
//!   (recovered from the function's slot table). MiniWeb environments are
//!   flat per function — `let` shadowing overwrites, there is no block
//!   scoping — so a per-function symbol table is exact, not approximate.
//! * **Call resolution** — callee names resolve to function indices at
//!   compile time using the same handler-first, first-match rule as
//!   [`Unit::function`]. Unresolvable names are *not* a compile error:
//!   they lower to `CallTarget::Undefined` and raise
//!   [`ExecError::UndefinedFunction`] only if the call executes, matching
//!   the reference interpreter (a call behind a dead guard must not fail).
//!   Arity is likewise checked at call execution time.
//! * **Frame pooling** — call frames are recycled through
//!   [`InterpScratch`], so steady-state execution allocates nothing for
//!   environments; the scratch is reusable across sessions, which is how
//!   the dynamic scanner amortizes a whole attack batch.
//!
//! Equivalence with the tree-walker is load-bearing (the scanner's
//! confirmations, and therefore every benchmark number downstream, flow
//! through here), so the execution-step budget is charged at *identical*
//! points: once per statement executed and once per expression node
//! evaluated. The `equivalence` tests and the corpus-level property tests
//! cross-check observations *and* errors against
//! [`Interpreter::run_session_treewalk`].
//!
//! Compilation also feeds the `interp.env.interned_slots` telemetry
//! counter (total slots interned), giving scan traces a cheap proxy for
//! how much environment traffic the slot representation absorbed.

use crate::ast::{BinOp, Expr, SiteId, Stmt, Unit};
use crate::interp::{
    apply_sanitizer, eval_binop, Data, ExecError, Flow, Interpreter, Request, SinkObservation,
    SinkSet, TaintList, TaintTag, Value,
};
use crate::types::{SanitizerKind, SinkKind, SourceKind};
use std::collections::BTreeMap;

/// Records interned slots on the process-wide telemetry registry. The
/// counter handle is resolved once and cached; recording is a single
/// relaxed atomic add.
fn record_interned_slots(n: u64) {
    use std::sync::{Arc, OnceLock};
    use vdbench_telemetry::registry::Counter;
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if n > 0 {
        HANDLE
            .get_or_init(|| {
                vdbench_telemetry::registry::global().counter("interp.env.interned_slots")
            })
            .add(n);
    }
}

/// A compiled expression: structurally identical to [`Expr`] except that
/// variable references carry slot indices instead of names.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CExpr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference by environment slot.
    Var(u32),
    /// Attacker-controlled input.
    Source {
        /// Request surface.
        kind: SourceKind,
        /// Input name.
        name: String,
    },
    /// String concatenation.
    Concat(Box<CExpr>, Box<CExpr>),
    /// Sanitization of a sub-expression.
    Sanitize {
        /// The sanitizer applied.
        kind: SanitizerKind,
        /// The sanitized expression.
        arg: Box<CExpr>,
    },
    /// Binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Persistent-store read.
    StoreRead {
        /// Store key.
        key: String,
    },
}

/// Where a compiled call dispatches to.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CallTarget {
    /// Index into [`CompiledUnit::functions`].
    Resolved(u32),
    /// The unit defines no function with this name; raising
    /// [`ExecError::UndefinedFunction`] is deferred until the call actually
    /// executes (reference semantics: dead code may be malformed).
    Undefined(String),
}

/// A compiled statement. `Let` and `Assign` collapse into one slot write —
/// the distinction is purely syntactic in MiniWeb's flat function scopes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CStmt {
    /// Slot write (`let x = e;` or `x = e;`).
    Assign {
        /// Destination slot.
        slot: u32,
        /// Value expression.
        expr: CExpr,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: CExpr,
        /// Then branch.
        then_branch: Vec<CStmt>,
        /// Else branch.
        else_branch: Vec<CStmt>,
    },
    /// Bounded while loop.
    While {
        /// Loop condition.
        cond: CExpr,
        /// Loop body.
        body: Vec<CStmt>,
    },
    /// Security-sensitive sink call.
    Sink {
        /// Sink kind.
        kind: SinkKind,
        /// Argument expression.
        arg: CExpr,
        /// Benchmark case id.
        site: SiteId,
    },
    /// Helper call with optional result bind.
    Call {
        /// Destination slot for the return value, if bound.
        dst: Option<u32>,
        /// Resolved (or deferred-undefined) callee.
        target: CallTarget,
        /// Argument expressions.
        args: Vec<CExpr>,
    },
    /// `return e;`
    Return(CExpr),
    /// Persistent-store write.
    StoreWrite {
        /// Store key.
        key: String,
        /// The stored value.
        expr: CExpr,
    },
}

/// One compiled function: body over slot-indexed environments plus the
/// slot table needed to size frames and report `UndefinedVariable` with
/// the original name.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledFunction {
    /// Function name (for arity-mismatch diagnostics).
    pub(crate) name: String,
    /// Declared parameter count; parameters occupy slots `0..n_params`.
    pub(crate) n_params: usize,
    /// Slot index → variable name (parameters first, then first
    /// occurrence).
    pub(crate) slot_names: Vec<String>,
    /// Compiled body.
    pub(crate) body: Vec<CStmt>,
}

/// A [`Unit`] lowered to executable form: the handler at index 0 followed
/// by the helpers in declaration order, so name resolution by first index
/// match reproduces [`Unit::function`] exactly. Each function carries both
/// its slot-compiled body (`functions`, the mid-tier walker's form) and
/// its bytecode (`code`, what [`Interpreter::run_compiled`] executes).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledUnit {
    pub(crate) functions: Vec<CompiledFunction>,
    pub(crate) code: Vec<crate::bytecode::FuncCode>,
}

/// Per-function symbol table mapping variable names to dense slots.
struct SymbolTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl SymbolTable {
    fn new(params: &[String]) -> Self {
        let mut t = SymbolTable {
            names: Vec::new(),
            index: BTreeMap::new(),
        };
        for p in params {
            t.slot(p);
        }
        t
    }

    fn slot(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = u32::try_from(self.names.len()).expect("slot count fits in u32");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), s);
        s
    }
}

impl CompiledUnit {
    /// Compiles a unit: interns every function's variables into dense
    /// slots, resolves call targets, and records the interned-slot total
    /// on the `interp.env.interned_slots` telemetry counter.
    pub fn compile(unit: &Unit) -> CompiledUnit {
        // Resolution order must match `Unit::function`: handler first,
        // then helpers, first match wins.
        let mut names: Vec<&str> = Vec::with_capacity(1 + unit.helpers.len());
        names.push(unit.handler.name.as_str());
        names.extend(unit.helpers.iter().map(|h| h.name.as_str()));
        let resolve = |func: &str| -> CallTarget {
            match names.iter().position(|n| *n == func) {
                Some(i) => CallTarget::Resolved(u32::try_from(i).expect("function index fits")),
                None => CallTarget::Undefined(func.to_string()),
            }
        };
        let mut functions = Vec::with_capacity(1 + unit.helpers.len());
        let mut total_slots = 0u64;
        for f in std::iter::once(&unit.handler).chain(&unit.helpers) {
            let mut syms = SymbolTable::new(&f.params);
            let body = compile_block(&f.body, &mut syms, &resolve);
            total_slots += syms.names.len() as u64;
            functions.push(CompiledFunction {
                name: f.name.clone(),
                n_params: f.params.len(),
                slot_names: syms.names,
                body,
            });
        }
        record_interned_slots(total_slots);
        let code = functions
            .iter()
            .map(|f| crate::bytecode::compile_fn(&functions, f))
            .collect();
        CompiledUnit { functions, code }
    }

    /// Total environment slots interned across all functions (the amount
    /// added to the `interp.env.interned_slots` counter at compile time).
    pub fn total_slots(&self) -> usize {
        self.functions.iter().map(|f| f.slot_names.len()).sum()
    }

    /// The compiled handler (always present; a [`Unit`] has exactly one).
    fn handler(&self) -> &CompiledFunction {
        &self.functions[0]
    }
}

fn compile_block(
    body: &[Stmt],
    syms: &mut SymbolTable,
    resolve: &impl Fn(&str) -> CallTarget,
) -> Vec<CStmt> {
    body.iter()
        .map(|s| compile_stmt(s, syms, resolve))
        .collect()
}

fn compile_stmt(
    stmt: &Stmt,
    syms: &mut SymbolTable,
    resolve: &impl Fn(&str) -> CallTarget,
) -> CStmt {
    match stmt {
        Stmt::Let { var, expr } | Stmt::Assign { var, expr } => {
            let expr = compile_expr(expr, syms);
            CStmt::Assign {
                slot: syms.slot(var),
                expr,
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => CStmt::If {
            cond: compile_expr(cond, syms),
            then_branch: compile_block(then_branch, syms, resolve),
            else_branch: compile_block(else_branch, syms, resolve),
        },
        Stmt::While { cond, body } => CStmt::While {
            cond: compile_expr(cond, syms),
            body: compile_block(body, syms, resolve),
        },
        Stmt::Sink { kind, arg, site } => CStmt::Sink {
            kind: *kind,
            arg: compile_expr(arg, syms),
            site: *site,
        },
        Stmt::Call { var, func, args } => CStmt::Call {
            dst: var.as_deref().map(|v| syms.slot(v)),
            target: resolve(func),
            args: args.iter().map(|a| compile_expr(a, syms)).collect(),
        },
        Stmt::Return(expr) => CStmt::Return(compile_expr(expr, syms)),
        Stmt::StoreWrite { key, expr } => CStmt::StoreWrite {
            key: key.clone(),
            expr: compile_expr(expr, syms),
        },
    }
}

fn compile_expr(expr: &Expr, syms: &mut SymbolTable) -> CExpr {
    match expr {
        Expr::Int(i) => CExpr::Int(*i),
        Expr::Str(s) => CExpr::Str(s.clone()),
        Expr::Bool(b) => CExpr::Bool(*b),
        Expr::Var(name) => CExpr::Var(syms.slot(name)),
        Expr::Source { kind, name } => CExpr::Source {
            kind: *kind,
            name: name.clone(),
        },
        Expr::Concat(a, b) => CExpr::Concat(
            Box::new(compile_expr(a, syms)),
            Box::new(compile_expr(b, syms)),
        ),
        Expr::Sanitize { kind, arg } => CExpr::Sanitize {
            kind: *kind,
            arg: Box::new(compile_expr(arg, syms)),
        },
        Expr::BinOp { op, lhs, rhs } => CExpr::BinOp {
            op: *op,
            lhs: Box::new(compile_expr(lhs, syms)),
            rhs: Box::new(compile_expr(rhs, syms)),
        },
        Expr::StoreRead { key } => CExpr::StoreRead { key: key.clone() },
    }
}

/// Reusable execution scratch for [`Interpreter::run_compiled`]: a pool of
/// recycled environment frames plus the session's persistent store (whose
/// allocation is reused across sessions; its *contents* are cleared at
/// every session start, so reuse is invisible to semantics).
#[derive(Debug, Default)]
pub struct InterpScratch {
    pub(crate) frames: Vec<Vec<Option<Value>>>,
    pub(crate) store: BTreeMap<String, Value>,
}

impl InterpScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        InterpScratch::default()
    }

    /// Number of pooled frames currently available (diagnostic; exercised
    /// by the frame-reuse tests).
    pub fn pooled_frames(&self) -> usize {
        self.frames.len()
    }
}

/// Pops a pooled frame (or allocates one) and resets it to `n` empty
/// slots, retaining capacity.
pub(crate) fn take_frame(pool: &mut Vec<Vec<Option<Value>>>, n: usize) -> Vec<Option<Value>> {
    let mut f = pool.pop().unwrap_or_default();
    f.clear();
    f.resize_with(n, || None);
    f
}

impl Interpreter {
    /// Executes a session against a pre-compiled unit, reusing `scratch`
    /// for environment frames and the persistent store. Semantics are
    /// identical to [`Interpreter::run_session`] (which is implemented on
    /// top of this); the point of the split is that callers running many
    /// sessions against one unit — the dynamic scanner's attack batches —
    /// compile once and keep the scratch warm.
    ///
    /// This is the bytecode-VM tier (see `crate::bytecode`); the slot
    /// walker remains available as
    /// [`Interpreter::run_compiled_slotwalk`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interpreter::run_session`].
    pub fn run_compiled(
        &self,
        unit: &CompiledUnit,
        requests: &[Request],
        scratch: &mut InterpScratch,
    ) -> Result<Vec<SinkObservation>, ExecError> {
        crate::bytecode::run_vm(self, unit, requests, scratch)
    }

    /// Executes a session through the slot-compiled tree walker — the
    /// mid-tier oracle between [`Interpreter::run_session_treewalk`] and
    /// the bytecode VM. Kept (and tested) so equivalence failures bisect
    /// to a single lowering step.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interpreter::run_session`].
    pub fn run_compiled_slotwalk(
        &self,
        unit: &CompiledUnit,
        requests: &[Request],
        scratch: &mut InterpScratch,
    ) -> Result<Vec<SinkObservation>, ExecError> {
        scratch.store.clear();
        let handler = unit.handler();
        let mut observations = Vec::new();
        for request in requests {
            let mut env = take_frame(&mut scratch.frames, handler.slot_names.len());
            let mut ctx = CExecCtx {
                request,
                interp: self,
                steps: 0,
                observations: &mut observations,
                store: &mut scratch.store,
                frames: &mut scratch.frames,
            };
            // The handler takes no formal parameters: inputs arrive via
            // Source expressions against the request.
            let flow = ctx.exec_block(unit, handler, &handler.body, &mut env, 0);
            scratch.frames.push(env);
            flow?;
        }
        Ok(observations)
    }
}

/// Per-request execution context over a compiled unit. Mirrors the
/// tree-walker's `ExecCtx`, with the frame pool threaded through so call
/// frames recycle.
struct CExecCtx<'a> {
    request: &'a Request,
    interp: &'a Interpreter,
    steps: usize,
    observations: &'a mut Vec<SinkObservation>,
    /// The unit's persistent store, shared across a session's requests.
    store: &'a mut BTreeMap<String, Value>,
    frames: &'a mut Vec<Vec<Option<Value>>>,
}

impl CExecCtx<'_> {
    /// Charges one execution step — at exactly the same points as the
    /// tree-walking interpreter (statement execution and expression
    /// evaluation), so `StepLimit` fires on the same step for the same
    /// program and input.
    fn tick(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.interp.max_steps {
            Err(ExecError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn exec_block(
        &mut self,
        unit: &CompiledUnit,
        fun: &CompiledFunction,
        body: &[CStmt],
        env: &mut Vec<Option<Value>>,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        for stmt in body {
            match self.exec_stmt(unit, fun, stmt, env, depth)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        unit: &CompiledUnit,
        fun: &CompiledFunction,
        stmt: &CStmt,
        env: &mut Vec<Option<Value>>,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        self.tick()?;
        match stmt {
            CStmt::Assign { slot, expr } => {
                let v = self.eval(fun, expr, env)?;
                env[*slot as usize] = Some(v);
                Ok(Flow::Normal)
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(fun, cond, env)?;
                if c.truthy() {
                    self.exec_block(unit, fun, then_branch, env, depth)
                } else {
                    self.exec_block(unit, fun, else_branch, env, depth)
                }
            }
            CStmt::While { cond, body } => {
                let mut iters = 0;
                while self.eval(fun, cond, env)?.truthy() {
                    iters += 1;
                    if iters > self.interp.max_loop_iters {
                        break; // bounded execution: treat as loop timeout
                    }
                    match self.exec_block(unit, fun, body, env, depth)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Sink { kind, arg, site } => {
                let v = self.eval(fun, arg, env)?;
                let tainted = v.tainted_for(*kind);
                let offending = v
                    .taints()
                    .iter()
                    .filter(|t| !t.sanitized_for.contains(*kind))
                    .map(|t| t.name.to_string())
                    .collect();
                self.observations.push(SinkObservation {
                    site: *site,
                    kind: *kind,
                    rendered: v.render(),
                    tainted,
                    offending_sources: offending,
                });
                Ok(Flow::Normal)
            }
            CStmt::Call { dst, target, args } => {
                if depth + 1 > self.interp.max_call_depth {
                    return Err(ExecError::CallDepth);
                }
                let callee = match target {
                    CallTarget::Resolved(idx) => &unit.functions[*idx as usize],
                    CallTarget::Undefined(name) => {
                        return Err(ExecError::UndefinedFunction(name.clone()));
                    }
                };
                if callee.n_params != args.len() {
                    return Err(ExecError::ArityMismatch {
                        func: callee.name.clone(),
                        expected: callee.n_params,
                        actual: args.len(),
                    });
                }
                // Parameters occupy slots 0..n_params, so arguments land
                // directly in their frame positions (same evaluation order
                // as the tree-walker). The frame goes back to the pool on
                // every exit path — an early `?` here used to leak it, so
                // a batch with failing sessions grew a fresh allocation
                // per failure.
                let mut frame = take_frame(self.frames, callee.slot_names.len());
                let flow = self.call_into_frame(unit, fun, callee, args, env, &mut frame, depth);
                self.frames.push(frame);
                let result = match flow? {
                    Flow::Return(v) => v,
                    Flow::Normal => Value::untainted(Data::Str(String::new())),
                };
                if let Some(dst) = dst {
                    env[*dst as usize] = Some(result);
                }
                Ok(Flow::Normal)
            }
            CStmt::Return(expr) => {
                let v = self.eval(fun, expr, env)?;
                Ok(Flow::Return(v))
            }
            CStmt::StoreWrite { key, expr } => {
                let v = self.eval(fun, expr, env)?;
                self.store.insert(key.clone(), v);
                Ok(Flow::Normal)
            }
        }
    }

    /// Evaluates the arguments into the callee frame and executes the
    /// body. Factored out of the `Call` arm so the caller can return the
    /// frame to the pool on *every* exit path, including the error `?`s
    /// in here.
    #[allow(clippy::too_many_arguments)] // mirrors the Call arm's state
    fn call_into_frame(
        &mut self,
        unit: &CompiledUnit,
        fun: &CompiledFunction,
        callee: &CompiledFunction,
        args: &[CExpr],
        env: &[Option<Value>],
        frame: &mut Vec<Option<Value>>,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        for (i, arg) in args.iter().enumerate() {
            let v = self.eval(fun, arg, env)?;
            frame[i] = Some(v);
        }
        // No body clone here: the callee is borrowed from `unit`, which
        // is independent of `&mut self`.
        self.exec_block(unit, callee, &callee.body, frame, depth + 1)
    }

    fn eval(
        &mut self,
        fun: &CompiledFunction,
        expr: &CExpr,
        env: &[Option<Value>],
    ) -> Result<Value, ExecError> {
        self.tick()?;
        match expr {
            CExpr::Int(i) => Ok(Value::untainted(Data::Int(*i))),
            CExpr::Str(s) => Ok(Value::untainted(Data::Str(s.clone()))),
            CExpr::Bool(b) => Ok(Value::untainted(Data::Bool(*b))),
            CExpr::Var(slot) => env[*slot as usize].clone().ok_or_else(|| {
                ExecError::UndefinedVariable(fun.slot_names[*slot as usize].clone())
            }),
            CExpr::Source { kind, name } => {
                let raw = self.request.get(*kind, name).to_string();
                Ok(Value {
                    data: Data::Str(raw),
                    taints: TaintList::one(TaintTag {
                        kind: *kind,
                        name: std::sync::Arc::from(name.as_str()),
                        sanitized_for: SinkSet::new(),
                    }),
                })
            }
            CExpr::Concat(a, b) => {
                let va = self.eval(fun, a, env)?;
                let vb = self.eval(fun, b, env)?;
                let mut taints = va.taints.clone();
                for t in &vb.taints {
                    if !taints.contains(t) {
                        taints.push(t.clone());
                    }
                }
                Ok(Value {
                    data: Data::Str(format!("{}{}", va.render(), vb.render())),
                    taints,
                })
            }
            CExpr::Sanitize { kind, arg } => {
                let v = self.eval(fun, arg, env)?;
                Ok(apply_sanitizer(*kind, v))
            }
            CExpr::BinOp { op, lhs, rhs } => {
                let a = self.eval(fun, lhs, env)?;
                let b = self.eval(fun, rhs, env)?;
                Ok(eval_binop(*op, a, b))
            }
            CExpr::StoreRead { key } => Ok(self
                .store
                .get(key)
                .cloned()
                .unwrap_or_else(|| Value::untainted(Data::Str(String::new())))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Function;
    use crate::generator::CorpusBuilder;

    fn site(s: u32) -> SiteId {
        SiteId { unit: 0, sink: s }
    }

    fn param(name: &str) -> Expr {
        Expr::Source {
            kind: SourceKind::HttpParam,
            name: name.into(),
        }
    }

    fn unit(body: Vec<Stmt>, helpers: Vec<Function>) -> Unit {
        Unit {
            id: 0,
            handler: Function::new("handler", vec![], body),
            helpers,
        }
    }

    #[test]
    fn slots_intern_params_first_and_dedup() {
        let helper = Function::new(
            "h",
            vec!["a".into(), "b".into()],
            vec![
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::concat(Expr::var("a"), Expr::var("b")),
                },
                Stmt::Assign {
                    var: "x".into(),
                    expr: Expr::concat(Expr::var("x"), Expr::var("a")),
                },
                Stmt::Return(Expr::var("x")),
            ],
        );
        let u = unit(vec![], vec![helper]);
        let c = CompiledUnit::compile(&u);
        assert_eq!(c.functions.len(), 2);
        let h = &c.functions[1];
        assert_eq!(h.n_params, 2);
        // Params occupy slots 0 and 1; `x` interned once at slot 2.
        assert_eq!(h.slot_names, vec!["a", "b", "x"]);
        assert_eq!(c.total_slots(), 3);
    }

    #[test]
    fn undefined_function_deferred_to_execution() {
        // A call to a ghost function behind a dead guard must not fail…
        let guarded = unit(
            vec![Stmt::If {
                cond: Expr::Bool(false),
                then_branch: vec![Stmt::Call {
                    var: None,
                    func: "ghost".into(),
                    args: vec![],
                }],
                else_branch: vec![],
            }],
            vec![],
        );
        let interp = Interpreter::default();
        assert!(interp.run(&guarded, &Request::new()).is_ok());
        // …but the same call on the hot path still raises the error.
        let live = unit(
            vec![Stmt::Call {
                var: None,
                func: "ghost".into(),
                args: vec![],
            }],
            vec![],
        );
        assert_eq!(
            interp.run(&live, &Request::new()).unwrap_err(),
            ExecError::UndefinedFunction("ghost".into())
        );
    }

    #[test]
    fn frame_pool_recycles_across_sessions() {
        let helper = Function::new(
            "fmt",
            vec!["x".into()],
            vec![Stmt::Return(Expr::concat(Expr::str("v="), Expr::var("x")))],
        );
        let u = unit(
            vec![
                Stmt::Call {
                    var: Some("out".into()),
                    func: "fmt".into(),
                    args: vec![param("q")],
                },
                Stmt::Sink {
                    kind: SinkKind::HtmlOutput,
                    arg: Expr::var("out"),
                    site: site(0),
                },
            ],
            vec![helper],
        );
        let compiled = CompiledUnit::compile(&u);
        let interp = Interpreter::default();
        let mut scratch = InterpScratch::new();
        let req = [Request::new().with_param("q", "hello")];
        let first = interp.run_compiled(&compiled, &req, &mut scratch).unwrap();
        assert_eq!(first[0].rendered, "v=hello");
        // Handler frame + callee frame both returned to the pool.
        assert_eq!(scratch.pooled_frames(), 2);
        let second = interp.run_compiled(&compiled, &req, &mut scratch).unwrap();
        assert_eq!(first, second);
        // Reuse, not growth: the pool is back at its steady state.
        assert_eq!(scratch.pooled_frames(), 2);
    }

    #[test]
    fn store_cleared_between_sessions() {
        let u = unit(
            vec![
                Stmt::Sink {
                    kind: SinkKind::SqlQuery,
                    arg: Expr::StoreRead { key: "row".into() },
                    site: site(0),
                },
                Stmt::StoreWrite {
                    key: "row".into(),
                    expr: param("v"),
                },
            ],
            vec![],
        );
        let compiled = CompiledUnit::compile(&u);
        let interp = Interpreter::default();
        let mut scratch = InterpScratch::new();
        let req = [Request::new().with_param("v", "payload")];
        let first = interp.run_compiled(&compiled, &req, &mut scratch).unwrap();
        assert_eq!(first[0].rendered, "");
        // The write from session 1 must not leak into session 2.
        let second = interp.run_compiled(&compiled, &req, &mut scratch).unwrap();
        assert_eq!(second[0].rendered, "");
        assert_eq!(first, second);
    }

    #[test]
    fn compiled_matches_treewalk_on_generated_corpus() {
        // The strongest equivalence check: every unit of a generated
        // corpus (covering all vulnerability classes, flow shapes, gates,
        // stores and helper calls), several request shapes, observations
        // AND errors compared structurally.
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(0.5)
            .seed(2024)
            .build();
        let interp = Interpreter::default();
        let requests = [
            Request::new(),
            Request::new().with_param("id", "x' OR '1'='1"),
            Request::new()
                .with_param("mode", "debug")
                .with_param("q", "<script>alert(1)</script>")
                .with_header("ua", "../../etc/passwd")
                .with_cookie("sid", "; cat /etc/passwd"),
        ];
        for u in corpus.units() {
            for req in &requests {
                let fast = interp.run(u, req);
                let slow = interp.run_session_treewalk(u, std::slice::from_ref(req));
                assert_eq!(fast, slow, "unit {} diverged", u.id);
            }
            // Two-request session with a shared store (second-order flows).
            let session = [requests[2].clone(), Request::new()];
            assert_eq!(
                interp.run_session(u, &session),
                interp.run_session_treewalk(u, &session),
                "unit {} session diverged",
                u.id
            );
        }
    }

    #[test]
    fn compiled_matches_treewalk_on_errors_and_limits() {
        let tight = Interpreter::with_limits(40, 4, 2);
        // Deep recursion: both interpreters must fail identically.
        let helper = Function::new(
            "h",
            vec![],
            vec![Stmt::Call {
                var: None,
                func: "h".into(),
                args: vec![],
            }],
        );
        let u = unit(
            vec![Stmt::Call {
                var: None,
                func: "h".into(),
                args: vec![],
            }],
            vec![helper],
        );
        let req = Request::new();
        assert_eq!(
            tight.run(&u, &req),
            tight.run_session_treewalk(&u, std::slice::from_ref(&req))
        );
        // Step budget: with a generous loop-iteration cap, a long loop
        // trips StepLimit on the same step in both implementations.
        let tight = Interpreter::with_limits(40, 1000, 2);
        let looped = unit(
            vec![
                Stmt::Let {
                    var: "i".into(),
                    expr: Expr::Int(0),
                },
                Stmt::While {
                    cond: Expr::BinOp {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::var("i")),
                        rhs: Box::new(Expr::Int(1000)),
                    },
                    body: vec![Stmt::Assign {
                        var: "i".into(),
                        expr: Expr::BinOp {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::var("i")),
                            rhs: Box::new(Expr::Int(1)),
                        },
                    }],
                },
            ],
            vec![],
        );
        assert_eq!(
            tight.run(&looped, &req),
            tight.run_session_treewalk(&looped, std::slice::from_ref(&req))
        );
        assert_eq!(tight.run(&looped, &req).unwrap_err(), ExecError::StepLimit);
    }

    #[test]
    fn telemetry_counter_advances_on_compile() {
        let counter = vdbench_telemetry::registry::global().counter("interp.env.interned_slots");
        let before = counter.get();
        let u = unit(
            vec![Stmt::Let {
                var: "x".into(),
                expr: Expr::Int(1),
            }],
            vec![],
        );
        let c = CompiledUnit::compile(&u);
        assert_eq!(c.total_slots(), 1);
        assert!(
            counter.get() > before,
            "counter must advance by at least the interned slots"
        );
    }
}
