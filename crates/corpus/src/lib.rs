//! `MiniWeb`: a synthetic vulnerable-code corpus with ground truth.
//!
//! The paper benchmarks vulnerability detection tools on web-service
//! workloads with known vulnerabilities. Those workloads are proprietary,
//! so this crate builds the closest behaviourally faithful substitute: a
//! small imperative web-handler language (the *MiniWeb* AST), a
//! taint-tracking reference interpreter defining its dynamic semantics, and
//! a seeded generator that injects vulnerabilities of six CWE classes with
//! **construction-time ground truth**.
//!
//! The generator deliberately produces the code shapes that give real tools
//! their characteristic error profiles:
//!
//! * sanitized flows using the **wrong sanitizer** for the sink (fools
//!   pattern matchers into false negatives — the code "looks escaped");
//! * flows guarded by **constant-false branches** (path-insensitive static
//!   analysis reports them: principled false positives);
//! * **interprocedural** flows through helper functions (defeats detectors
//!   with limited call depth);
//! * **input-gated** sinks only reachable for specific parameter values
//!   (dynamic scanners miss them unless a payload guesses the gate).
//!
//! # Example
//!
//! ```
//! use vdbench_corpus::{CorpusBuilder, VulnClass};
//!
//! let corpus = CorpusBuilder::new()
//!     .units(100)
//!     .vulnerability_density(0.3)
//!     .seed(42)
//!     .build();
//! assert_eq!(corpus.units().len(), 100);
//! let vulnerable = corpus.sites().filter(|s| s.vulnerable).count();
//! assert!(vulnerable > 10 && vulnerable < 60);
//! # let _ = VulnClass::SqlInjection;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub(crate) mod bytecode;
pub mod compile;
pub mod corpus;
pub mod generator;
pub mod interp;
pub mod pretty;
pub mod types;

pub use ast::{Expr, Function, SiteId, Stmt, Unit};
pub use compile::{CompiledUnit, InterpScratch};
pub use corpus::{AttackSession, Corpus, CorpusStats, SiteInfo};
pub use generator::stream::{CorpusStream, UnitMaterializer, UnitPlan};
pub use generator::CorpusBuilder;
pub use interp::{Interpreter, Request, SinkObservation};
pub use types::{FlowShape, SanitizerKind, SinkKind, SourceKind, VulnClass};
