//! The MiniWeb reference interpreter with dynamic taint tracking.
//!
//! This defines the language's dynamic semantics and doubles as the
//! runtime substrate for pentest-style detection: run a handler under an
//! attacker-chosen [`Request`] and observe which sinks receive data still
//! tainted for their sink kind.

use crate::ast::{BinOp, Expr, SiteId, Stmt, Unit};
use crate::types::{SanitizerKind, SinkKind, SourceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An HTTP-like request supplying all attacker-controlled inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    params: BTreeMap<String, String>,
    headers: BTreeMap<String, String>,
    cookies: BTreeMap<String, String>,
}

impl Request {
    /// Creates an empty request.
    pub fn new() -> Self {
        Request::default()
    }

    /// Sets a query parameter (builder style).
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(name.into(), value.into());
        self
    }

    /// Sets a header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(name.into(), value.into());
        self
    }

    /// Sets a cookie (builder style).
    pub fn with_cookie(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.cookies.insert(name.into(), value.into());
        self
    }

    /// Sets an input on the given source surface.
    pub fn set(&mut self, kind: SourceKind, name: impl Into<String>, value: impl Into<String>) {
        let map = match kind {
            SourceKind::HttpParam => &mut self.params,
            SourceKind::HttpHeader => &mut self.headers,
            SourceKind::Cookie => &mut self.cookies,
        };
        map.insert(name.into(), value.into());
    }

    /// Stable 64-bit content fingerprint of the request: every
    /// `(surface, name, value)` triple, surface- and name-ordered (the
    /// maps are `BTreeMap`s), folded through FNV-1a with field
    /// separators. Two requests fingerprint equal **iff** an interpreter
    /// run observes them identically — the primitive behind the dynamic
    /// scanner's attack-session deduplication: sprayed sessions that
    /// collapse to the same requests execute once.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            // Field separator: distinguishes ("ab","c") from ("a","bc").
            h ^= 0x1f;
            h = h.wrapping_mul(PRIME);
        };
        for (tag, map) in [
            (b'p', &self.params),
            (b'h', &self.headers),
            (b'c', &self.cookies),
        ] {
            eat(&[tag]);
            for (name, value) in map {
                eat(name.as_bytes());
                eat(value.as_bytes());
            }
        }
        h
    }

    /// Reads an input; absent inputs read as the empty string (as a web
    /// framework would deliver a missing parameter).
    pub fn get(&self, kind: SourceKind, name: &str) -> &str {
        let map = match kind {
            SourceKind::HttpParam => &self.params,
            SourceKind::HttpHeader => &self.headers,
            SourceKind::Cookie => &self.cookies,
        };
        map.get(name).map(String::as_str).unwrap_or("")
    }
}

/// A set of [`SinkKind`]s packed into one byte.
///
/// [`SinkKind`] has six variants, so the sanitization record fits in a
/// single bitmask. Taint tags are cloned on every concatenation and
/// sanitizer application — the hottest path in all three interpreter
/// tiers — and the historical `BTreeSet<SinkKind>` representation cost a
/// heap node per non-empty set per clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkSet {
    bits: u8,
}

impl SinkSet {
    /// The empty set.
    pub const fn new() -> SinkSet {
        SinkSet { bits: 0 }
    }

    /// Adds a sink to the set.
    pub fn insert(&mut self, sink: SinkKind) {
        self.bits |= 1 << sink as u8;
    }

    /// Whether the sink is in the set.
    #[must_use]
    pub fn contains(self, sink: SinkKind) -> bool {
        self.bits & (1 << sink as u8) != 0
    }

    /// The sinks in the set, in declaration order.
    pub fn iter(self) -> impl Iterator<Item = SinkKind> {
        [
            SinkKind::SqlQuery,
            SinkKind::HtmlOutput,
            SinkKind::ShellExec,
            SinkKind::FileOpen,
            SinkKind::Authenticate,
            SinkKind::CryptoHash,
        ]
        .into_iter()
        .filter(move |&k| self.contains(k))
    }
}

impl Serialize for SinkSet {
    fn to_value(&self) -> serde::Value {
        // Wire shape matches the old `BTreeSet<SinkKind>`: a list of kinds
        // in declaration (= sort) order.
        serde::Value::Array(self.iter().map(|k| k.to_value()).collect())
    }
}

impl Deserialize for SinkSet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let kinds: Vec<SinkKind> = Deserialize::from_value(value)?;
        let mut set = SinkSet::new();
        for kind in kinds {
            set.insert(kind);
        }
        Ok(set)
    }
}

/// One taint label: which source the data came from and which sinks it has
/// been sanitized for since.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintTag {
    /// Source surface.
    pub kind: SourceKind,
    /// Source name (parameter/header/cookie name). Shared rather than
    /// owned: tags are cloned wholesale every time a tainted value flows
    /// through an expression, so the name rides an `Arc` (a clone is a
    /// refcount bump, not a string allocation).
    pub name: Arc<str>,
    /// Sinks this datum is now safe for.
    pub sanitized_for: SinkSet,
}

impl Serialize for TaintTag {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kind".to_string(), self.kind.to_value()),
            ("name".to_string(), serde::Value::Str(self.name.to_string())),
            ("sanitized_for".to_string(), self.sanitized_for.to_value()),
        ])
    }
}

impl Deserialize for TaintTag {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::DeError::new(format!("TaintTag: missing field `{name}`")))
        };
        let name: String = Deserialize::from_value(field("name")?)?;
        Ok(TaintTag {
            kind: Deserialize::from_value(field("kind")?)?,
            name: Arc::from(name.as_str()),
            sanitized_for: Deserialize::from_value(field("sanitized_for")?)?,
        })
    }
}

/// The taint tags carried by one value, with the single-tag case inline.
///
/// Almost every tainted MiniWeb value carries exactly one tag — one
/// source reached it — and the historical `Vec<TaintTag>` representation
/// made that common case a heap allocation per value (and per clone).
/// `One` keeps the lone tag on the stack; `Many` falls back to a vector
/// only when flows actually merge. The representation is canonical
/// (`Many` always holds ≥ 2 tags), so the derived `PartialEq` is sound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) enum TaintList {
    /// Untainted.
    #[default]
    None,
    /// Exactly one tag, stored inline.
    One(TaintTag),
    /// Two or more tags (kept ≥ 2 by construction).
    Many(Vec<TaintTag>),
}

impl TaintList {
    pub(crate) fn one(tag: TaintTag) -> TaintList {
        TaintList::One(tag)
    }

    pub(crate) fn as_slice(&self) -> &[TaintTag] {
        match self {
            TaintList::None => &[],
            TaintList::One(tag) => std::slice::from_ref(tag),
            TaintList::Many(tags) => tags,
        }
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, TaintTag> {
        self.as_slice().iter()
    }

    pub(crate) fn contains(&self, tag: &TaintTag) -> bool {
        self.as_slice().contains(tag)
    }

    /// Appends a tag, spilling to the heap on the second one.
    pub(crate) fn push(&mut self, tag: TaintTag) {
        match self {
            TaintList::None => *self = TaintList::One(tag),
            TaintList::One(_) => {
                let TaintList::One(first) = std::mem::take(self) else {
                    unreachable!("just matched One");
                };
                *self = TaintList::Many(vec![first, tag]);
            }
            TaintList::Many(tags) => tags.push(tag),
        }
    }
}

impl<'a> IntoIterator for &'a TaintList {
    type Item = &'a TaintTag;
    type IntoIter = std::slice::Iter<'a, TaintTag>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Owned iterator over a [`TaintList`] (no allocation for the inline
/// variants).
pub(crate) enum TaintListIntoIter {
    Inline(Option<TaintTag>),
    Heap(std::vec::IntoIter<TaintTag>),
}

impl Iterator for TaintListIntoIter {
    type Item = TaintTag;
    fn next(&mut self) -> Option<TaintTag> {
        match self {
            TaintListIntoIter::Inline(slot) => slot.take(),
            TaintListIntoIter::Heap(iter) => iter.next(),
        }
    }
}

impl IntoIterator for TaintList {
    type Item = TaintTag;
    type IntoIter = TaintListIntoIter;
    fn into_iter(self) -> TaintListIntoIter {
        match self {
            TaintList::None => TaintListIntoIter::Inline(None),
            TaintList::One(tag) => TaintListIntoIter::Inline(Some(tag)),
            TaintList::Many(tags) => TaintListIntoIter::Heap(tags.into_iter()),
        }
    }
}

impl FromIterator<TaintTag> for TaintList {
    fn from_iter<I: IntoIterator<Item = TaintTag>>(iter: I) -> TaintList {
        let mut list = TaintList::None;
        for tag in iter {
            list.push(tag);
        }
        list
    }
}

impl Serialize for TaintList {
    fn to_value(&self) -> serde::Value {
        // Wire shape matches the old `Vec<TaintTag>`.
        serde::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for TaintList {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let tags: Vec<TaintTag> = Deserialize::from_value(value)?;
        Ok(tags.into_iter().collect())
    }
}

/// Runtime data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Data {
    Int(i64),
    Str(String),
    Bool(bool),
}

/// A runtime value: data plus taint labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Value {
    pub(crate) data: Data,
    pub(crate) taints: TaintList,
}

impl Value {
    pub(crate) fn untainted(data: Data) -> Value {
        Value {
            data,
            taints: TaintList::None,
        }
    }

    /// Renders the value as a string (the coercion used by concatenation
    /// and sinks).
    pub fn render(&self) -> String {
        match &self.data {
            Data::Int(i) => i.to_string(),
            Data::Str(s) => s.clone(),
            Data::Bool(b) => b.to_string(),
        }
    }

    /// Truthiness: `false`/`0`/`""` are false, everything else true.
    pub(crate) fn truthy(&self) -> bool {
        match &self.data {
            Data::Bool(b) => *b,
            Data::Int(i) => *i != 0,
            Data::Str(s) => !s.is_empty(),
        }
    }

    pub(crate) fn as_int(&self) -> i64 {
        match &self.data {
            Data::Int(i) => *i,
            Data::Bool(b) => i64::from(*b),
            Data::Str(s) => s.trim().parse().unwrap_or(0),
        }
    }

    /// Taint tags carried by the value.
    pub fn taints(&self) -> &[TaintTag] {
        self.taints.as_slice()
    }

    /// Whether the value is dangerous for the given sink: some tag lacks
    /// sanitization for it.
    pub fn tainted_for(&self, sink: SinkKind) -> bool {
        sink.is_taint_sink() && self.taints.iter().any(|t| !t.sanitized_for.contains(sink))
    }
}

/// What the interpreter saw at one executed sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkObservation {
    /// Which sink site executed.
    pub site: SiteId,
    /// The sink kind.
    pub kind: SinkKind,
    /// The rendered argument value.
    pub rendered: String,
    /// Whether the argument was still tainted for this sink kind.
    pub tainted: bool,
    /// Names of the sources whose taint reached the sink unsanitized.
    pub offending_sources: Vec<String>,
}

/// Why execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A variable was read before assignment.
    UndefinedVariable(
        /// Variable name.
        String,
    ),
    /// A call referenced a function the unit does not define.
    UndefinedFunction(
        /// Function name.
        String,
    ),
    /// A call passed the wrong number of arguments.
    ArityMismatch {
        /// Callee.
        func: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },
    /// The global step budget was exhausted (runaway loop).
    StepLimit,
    /// The call stack exceeded the depth limit.
    CallDepth,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UndefinedVariable(v) => write!(f, "undefined variable `{v}`"),
            ExecError::UndefinedFunction(v) => write!(f, "undefined function `{v}`"),
            ExecError::ArityMismatch {
                func,
                expected,
                actual,
            } => write!(f, "`{func}` takes {expected} arguments, got {actual}"),
            ExecError::StepLimit => write!(f, "step budget exhausted"),
            ExecError::CallDepth => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Control-flow signal inside a function body.
pub(crate) enum Flow {
    Normal,
    Return(Value),
}

/// The MiniWeb interpreter.
///
/// ```
/// use vdbench_corpus::{CorpusBuilder, Interpreter, Request};
///
/// let corpus = CorpusBuilder::new().units(5).seed(1).build();
/// let interp = Interpreter::default();
/// let unit = &corpus.units()[0];
/// let obs = interp.run(unit, &Request::new().with_param("id", "1"))?;
/// // Every run observes the sinks actually executed on this input.
/// assert!(obs.len() <= unit.sinks().len());
/// # Ok::<(), vdbench_corpus::interp::ExecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interpreter {
    pub(crate) max_steps: usize,
    pub(crate) max_loop_iters: usize,
    pub(crate) max_call_depth: usize,
}

impl Default for Interpreter {
    /// 100 000 steps, 256 loop iterations, call depth 32 — generous for
    /// generated units while still bounding runaway programs.
    fn default() -> Self {
        Interpreter {
            max_steps: 100_000,
            max_loop_iters: 256,
            max_call_depth: 32,
        }
    }
}

impl Interpreter {
    /// Creates an interpreter with explicit execution bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound is zero.
    pub fn with_limits(max_steps: usize, max_loop_iters: usize, max_call_depth: usize) -> Self {
        assert!(
            max_steps > 0 && max_loop_iters > 0 && max_call_depth > 0,
            "interpreter limits must be positive"
        );
        Interpreter {
            max_steps,
            max_loop_iters,
            max_call_depth,
        }
    }

    /// Executes a unit's handler against a request, returning the sink
    /// observations in execution order. The persistent store starts empty.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for malformed programs (undefined names, bad
    /// arity) or exhausted execution budgets.
    pub fn run(&self, unit: &Unit, request: &Request) -> Result<Vec<SinkObservation>, ExecError> {
        self.run_session(unit, std::slice::from_ref(request))
    }

    /// Executes a *session*: the requests run in order against the same
    /// unit with a **shared persistent store**, modelling multi-request
    /// attacks such as second-order injection (write the payload in one
    /// request, trigger it in the next). Observations from all requests
    /// are returned in execution order.
    ///
    /// Internally the unit is first lowered to a [`crate::compile::
    /// CompiledUnit`] (variable names interned to dense environment slots)
    /// and then executed; callers running many sessions against the same
    /// unit should compile once and use [`Interpreter::run_compiled`]
    /// directly to amortize compilation and reuse execution scratch.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interpreter::run`]; the step budget applies
    /// per request.
    pub fn run_session(
        &self,
        unit: &Unit,
        requests: &[Request],
    ) -> Result<Vec<SinkObservation>, ExecError> {
        let compiled = crate::compile::CompiledUnit::compile(unit);
        let mut scratch = crate::compile::InterpScratch::new();
        self.run_compiled(&compiled, requests, &mut scratch)
    }

    /// Reference tree-walking implementation of [`Interpreter::run_session`]
    /// (the historical interpreter, evaluating the AST directly with
    /// `BTreeMap` environments). Kept as the semantics oracle: the compiled
    /// slot-based interpreter must agree with it observation-for-observation
    /// and error-for-error, and the equivalence tests cross-check the two.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interpreter::run_session`].
    pub fn run_session_treewalk(
        &self,
        unit: &Unit,
        requests: &[Request],
    ) -> Result<Vec<SinkObservation>, ExecError> {
        let mut store: BTreeMap<String, Value> = BTreeMap::new();
        let mut observations = Vec::new();
        for request in requests {
            let mut ctx = ExecCtx {
                unit,
                request,
                interp: self,
                steps: 0,
                observations: Vec::new(),
                store: &mut store,
            };
            let mut env = Env::new();
            // The handler takes no formal parameters: inputs arrive via
            // Source expressions against the request.
            ctx.exec_block(&unit.handler.body, &mut env, 0)?;
            observations.extend(ctx.observations);
        }
        Ok(observations)
    }
}

/// Lexically scoped environment (function-local; MiniWeb has no globals).
struct Env {
    vars: BTreeMap<String, Value>,
}

impl Env {
    fn new() -> Self {
        Env {
            vars: BTreeMap::new(),
        }
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }
}

struct ExecCtx<'a> {
    unit: &'a Unit,
    request: &'a Request,
    interp: &'a Interpreter,
    steps: usize,
    observations: Vec<SinkObservation>,
    /// The unit's persistent store, shared across a session's requests.
    store: &'a mut BTreeMap<String, Value>,
}

impl<'a> ExecCtx<'a> {
    fn tick(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.interp.max_steps {
            Err(ExecError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        env: &mut Env,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        for stmt in body {
            match self.exec_stmt(stmt, env, depth)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env, depth: usize) -> Result<Flow, ExecError> {
        self.tick()?;
        match stmt {
            Stmt::Let { var, expr } | Stmt::Assign { var, expr } => {
                let v = self.eval(expr, env)?;
                env.set(var, v);
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond, env)?;
                if c.truthy() {
                    self.exec_block(then_branch, env, depth)
                } else {
                    self.exec_block(else_branch, env, depth)
                }
            }
            Stmt::While { cond, body } => {
                let mut iters = 0;
                while self.eval(cond, env)?.truthy() {
                    iters += 1;
                    if iters > self.interp.max_loop_iters {
                        break; // bounded execution: treat as loop timeout
                    }
                    match self.exec_block(body, env, depth)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Sink { kind, arg, site } => {
                let v = self.eval(arg, env)?;
                let tainted = v.tainted_for(*kind);
                let offending = v
                    .taints()
                    .iter()
                    .filter(|t| !t.sanitized_for.contains(*kind))
                    .map(|t| t.name.to_string())
                    .collect();
                self.observations.push(SinkObservation {
                    site: *site,
                    kind: *kind,
                    rendered: v.render(),
                    tainted,
                    offending_sources: offending,
                });
                Ok(Flow::Normal)
            }
            Stmt::Call { var, func, args } => {
                if depth + 1 > self.interp.max_call_depth {
                    return Err(ExecError::CallDepth);
                }
                let callee = self
                    .unit
                    .function(func)
                    .ok_or_else(|| ExecError::UndefinedFunction(func.clone()))?;
                if callee.params.len() != args.len() {
                    return Err(ExecError::ArityMismatch {
                        func: func.clone(),
                        expected: callee.params.len(),
                        actual: args.len(),
                    });
                }
                let mut callee_env = Env::new();
                for (param, arg) in callee.params.iter().zip(args) {
                    let v = self.eval(arg, env)?;
                    callee_env.set(param, v);
                }
                // Clone the body to release the borrow on self.unit during
                // recursive execution.
                let body = callee.body.clone();
                let result = match self.exec_block(&body, &mut callee_env, depth + 1)? {
                    Flow::Return(v) => v,
                    Flow::Normal => Value::untainted(Data::Str(String::new())),
                };
                if let Some(var) = var {
                    env.set(var, result);
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let v = self.eval(expr, env)?;
                Ok(Flow::Return(v))
            }
            Stmt::StoreWrite { key, expr } => {
                let v = self.eval(expr, env)?;
                self.store.insert(key.clone(), v);
                Ok(Flow::Normal)
            }
        }
    }

    fn eval(&mut self, expr: &Expr, env: &Env) -> Result<Value, ExecError> {
        self.tick()?;
        match expr {
            Expr::Int(i) => Ok(Value::untainted(Data::Int(*i))),
            Expr::Str(s) => Ok(Value::untainted(Data::Str(s.clone()))),
            Expr::Bool(b) => Ok(Value::untainted(Data::Bool(*b))),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| ExecError::UndefinedVariable(name.clone())),
            Expr::Source { kind, name } => {
                let raw = self.request.get(*kind, name).to_string();
                Ok(Value {
                    data: Data::Str(raw),
                    taints: TaintList::one(TaintTag {
                        kind: *kind,
                        name: Arc::from(name.as_str()),
                        sanitized_for: SinkSet::new(),
                    }),
                })
            }
            Expr::Concat(a, b) => {
                let va = self.eval(a, env)?;
                let vb = self.eval(b, env)?;
                let mut taints = va.taints.clone();
                for t in &vb.taints {
                    if !taints.contains(t) {
                        taints.push(t.clone());
                    }
                }
                Ok(Value {
                    data: Data::Str(format!("{}{}", va.render(), vb.render())),
                    taints,
                })
            }
            Expr::Sanitize { kind, arg } => {
                let v = self.eval(arg, env)?;
                Ok(apply_sanitizer(*kind, v))
            }
            Expr::BinOp { op, lhs, rhs } => {
                let a = self.eval(lhs, env)?;
                let b = self.eval(rhs, env)?;
                Ok(eval_binop(*op, a, b))
            }
            Expr::StoreRead { key } => Ok(self
                .store
                .get(key)
                .cloned()
                .unwrap_or_else(|| Value::untainted(Data::Str(String::new())))),
        }
    }
}

/// The transformation each sanitizer performs plus its taint effect.
pub(crate) fn apply_sanitizer(kind: SanitizerKind, v: Value) -> Value {
    let rendered = v.render();
    apply_sanitizer_raw(kind, &rendered, move || v.taints)
}

/// Core sanitizer semantics over a borrowed rendering. The bytecode tier
/// calls this directly for source-operand shapes so the input [`Value`]
/// (and its rendered clone) is never materialized; `taints` is invoked
/// lazily because the validating sanitizers discard taints entirely.
pub(crate) fn apply_sanitizer_raw(
    kind: SanitizerKind,
    rendered: &str,
    taints: impl FnOnce() -> TaintList,
) -> Value {
    match kind {
        SanitizerKind::ValidateInt => {
            // Strict parse; non-integers are rejected to a safe default.
            let n: i64 = rendered.trim().parse().unwrap_or(0);
            Value::untainted(Data::Int(n))
        }
        SanitizerKind::WhitelistCheck => {
            const WHITELIST: [&str; 4] = ["asc", "desc", "name", "date"];
            let safe = if WHITELIST.contains(&rendered) {
                rendered.to_string()
            } else {
                WHITELIST[0].to_string()
            };
            Value::untainted(Data::Str(safe))
        }
        SanitizerKind::EscapeSql => transform(rendered, taints, SinkKind::SqlQuery, |s| {
            s.replace('\'', "''")
        }),
        // Single pass; byte-identical to the chained
        // `replace('&',"&amp;").replace('<',"&lt;")…` it replaces (the
        // entities introduce only characters the later stages ignored).
        SanitizerKind::EscapeHtml => transform(rendered, taints, SinkKind::HtmlOutput, |s| {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    '>' => out.push_str("&gt;"),
                    '"' => out.push_str("&quot;"),
                    c => out.push(c),
                }
            }
            out
        }),
        // Single pass; byte-identical to
        // `format!("'{}'", s.replace('\'', "'\\''"))`.
        SanitizerKind::ShellQuote => transform(rendered, taints, SinkKind::ShellExec, |s| {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('\'');
            for c in s.chars() {
                match c {
                    '\'' => out.push_str("'\\''"),
                    c => out.push(c),
                }
            }
            out.push('\'');
            out
        }),
        // Both replaces run in sequence (removing `../` can expose a new
        // `..\` and vice versa is handled by the fixed order), but each
        // pass is skipped when its pattern is absent.
        SanitizerKind::NormalizePath => transform(rendered, taints, SinkKind::FileOpen, |s| {
            let first = if s.contains("../") {
                std::borrow::Cow::Owned(s.replace("../", ""))
            } else {
                std::borrow::Cow::Borrowed(s)
            };
            if first.contains("..\\") {
                first.replace("..\\", "")
            } else {
                first.into_owned()
            }
        }),
    }
}

fn transform(
    rendered: &str,
    taints: impl FnOnce() -> TaintList,
    protected: SinkKind,
    f: impl Fn(&str) -> String,
) -> Value {
    let s = f(rendered);
    let taints = taints()
        .into_iter()
        .map(|mut t| {
            t.sanitized_for.insert(protected);
            t
        })
        .collect();
    Value {
        data: Data::Str(s),
        taints,
    }
}

pub(crate) fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    let mut taints = a.taints.clone();
    for t in &b.taints {
        if !taints.contains(t) {
            taints.push(t.clone());
        }
    }
    match op {
        BinOp::Eq | BinOp::Ne => {
            // Compare as strings when either side is a string, otherwise
            // numerically; comparisons yield untainted booleans (a 1-bit
            // channel is below the model's granularity).
            let eq = match (&a.data, &b.data) {
                (Data::Str(_), _) | (_, Data::Str(_)) => a.render() == b.render(),
                _ => a.as_int() == b.as_int(),
            };
            Value::untainted(Data::Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
        BinOp::Lt => Value::untainted(Data::Bool(a.as_int() < b.as_int())),
        BinOp::Gt => Value::untainted(Data::Bool(a.as_int() > b.as_int())),
        BinOp::Add => Value {
            data: Data::Int(a.as_int().wrapping_add(b.as_int())),
            taints,
        },
        BinOp::Sub => Value {
            data: Data::Int(a.as_int().wrapping_sub(b.as_int())),
            taints,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Function;

    fn site(s: u32) -> SiteId {
        SiteId { unit: 0, sink: s }
    }

    fn param(name: &str) -> Expr {
        Expr::Source {
            kind: SourceKind::HttpParam,
            name: name.into(),
        }
    }

    fn unit(body: Vec<Stmt>, helpers: Vec<Function>) -> Unit {
        Unit {
            id: 0,
            handler: Function::new("handler", vec![], body),
            helpers,
        }
    }

    #[test]
    fn direct_tainted_flow_observed() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::SqlQuery,
                arg: Expr::concat(Expr::str("SELECT ... "), param("id")),
                site: site(0),
            }],
            vec![],
        );
        let req = Request::new().with_param("id", "1 OR 1=1");
        let obs = Interpreter::default().run(&u, &req).unwrap();
        assert_eq!(obs.len(), 1);
        assert!(obs[0].tainted);
        assert_eq!(obs[0].offending_sources, vec!["id"]);
        assert!(obs[0].rendered.contains("1 OR 1=1"));
    }

    #[test]
    fn correct_sanitizer_clears_taint_for_sink() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::SqlQuery,
                arg: Expr::sanitize(SanitizerKind::EscapeSql, param("id")),
                site: site(0),
            }],
            vec![],
        );
        let req = Request::new().with_param("id", "x' OR '1'='1");
        let obs = Interpreter::default().run(&u, &req).unwrap();
        assert!(!obs[0].tainted);
        // Escaping actually happened.
        assert!(obs[0].rendered.contains("''"));
    }

    #[test]
    fn mismatched_sanitizer_leaves_taint() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::SqlQuery,
                arg: Expr::sanitize(SanitizerKind::EscapeHtml, param("id")),
                site: site(0),
            }],
            vec![],
        );
        let obs = Interpreter::default()
            .run(&u, &Request::new().with_param("id", "payload"))
            .unwrap();
        assert!(obs[0].tainted, "HTML escaping must not protect SQL");
    }

    #[test]
    fn validate_int_clears_all_taint() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::ShellExec,
                arg: Expr::sanitize(SanitizerKind::ValidateInt, param("n")),
                site: site(0),
            }],
            vec![],
        );
        let obs = Interpreter::default()
            .run(&u, &Request::new().with_param("n", "; rm -rf /"))
            .unwrap();
        assert!(!obs[0].tainted);
        assert_eq!(obs[0].rendered, "0"); // rejected to safe default
    }

    #[test]
    fn whitelist_check() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::SqlQuery,
                arg: Expr::sanitize(SanitizerKind::WhitelistCheck, param("order")),
                site: site(0),
            }],
            vec![],
        );
        let ok = Interpreter::default()
            .run(&u, &Request::new().with_param("order", "desc"))
            .unwrap();
        assert_eq!(ok[0].rendered, "desc");
        assert!(!ok[0].tainted);
        let evil = Interpreter::default()
            .run(&u, &Request::new().with_param("order", "1; DROP TABLE"))
            .unwrap();
        assert_eq!(evil[0].rendered, "asc");
        assert!(!evil[0].tainted);
    }

    #[test]
    fn branch_gating_controls_reachability() {
        let u = unit(
            vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(param("mode")),
                    rhs: Box::new(Expr::str("debug")),
                },
                then_branch: vec![Stmt::Sink {
                    kind: SinkKind::ShellExec,
                    arg: param("cmd"),
                    site: site(0),
                }],
                else_branch: vec![],
            }],
            vec![],
        );
        let miss = Interpreter::default()
            .run(&u, &Request::new().with_param("cmd", "ls"))
            .unwrap();
        assert!(miss.is_empty(), "sink must not execute without the gate");
        let hit = Interpreter::default()
            .run(
                &u,
                &Request::new()
                    .with_param("mode", "debug")
                    .with_param("cmd", "ls"),
            )
            .unwrap();
        assert_eq!(hit.len(), 1);
        assert!(hit[0].tainted);
    }

    #[test]
    fn dead_guard_never_executes() {
        let u = unit(
            vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(Expr::Int(1)),
                    rhs: Box::new(Expr::Int(2)),
                },
                then_branch: vec![Stmt::Sink {
                    kind: SinkKind::SqlQuery,
                    arg: param("id"),
                    site: site(0),
                }],
                else_branch: vec![],
            }],
            vec![],
        );
        for payload in ["1", "' OR 1=1 --", "anything"] {
            let obs = Interpreter::default()
                .run(&u, &Request::new().with_param("id", payload))
                .unwrap();
            assert!(obs.is_empty());
        }
    }

    #[test]
    fn interprocedural_flow_preserves_taint() {
        let helper = Function::new(
            "fmt",
            vec!["x".into()],
            vec![Stmt::Return(Expr::concat(
                Expr::str("cmd "),
                Expr::var("x"),
            ))],
        );
        let u = unit(
            vec![
                Stmt::Call {
                    var: Some("full".into()),
                    func: "fmt".into(),
                    args: vec![param("arg")],
                },
                Stmt::Sink {
                    kind: SinkKind::ShellExec,
                    arg: Expr::var("full"),
                    site: site(0),
                },
            ],
            vec![helper],
        );
        let obs = Interpreter::default()
            .run(&u, &Request::new().with_param("arg", "; reboot"))
            .unwrap();
        assert!(obs[0].tainted);
        assert_eq!(obs[0].rendered, "cmd ; reboot");
    }

    #[test]
    fn while_loop_bounded() {
        let u = unit(
            vec![
                Stmt::Let {
                    var: "i".into(),
                    expr: Expr::Int(0),
                },
                // Infinite loop: i never changes direction.
                Stmt::While {
                    cond: Expr::BinOp {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::var("i")),
                        rhs: Box::new(Expr::Int(1)),
                    },
                    body: vec![Stmt::Assign {
                        var: "i".into(),
                        expr: Expr::BinOp {
                            op: BinOp::Sub,
                            lhs: Box::new(Expr::var("i")),
                            rhs: Box::new(Expr::Int(1)),
                        },
                    }],
                },
                Stmt::Sink {
                    kind: SinkKind::HtmlOutput,
                    arg: Expr::str("done"),
                    site: site(0),
                },
            ],
            vec![],
        );
        // The loop cap breaks out; execution completes.
        let obs = Interpreter::default().run(&u, &Request::new()).unwrap();
        assert_eq!(obs.len(), 1);
    }

    #[test]
    fn terminating_loop_runs() {
        let u = unit(
            vec![
                Stmt::Let {
                    var: "i".into(),
                    expr: Expr::Int(0),
                },
                Stmt::Let {
                    var: "acc".into(),
                    expr: Expr::str(""),
                },
                Stmt::While {
                    cond: Expr::BinOp {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::var("i")),
                        rhs: Box::new(Expr::Int(3)),
                    },
                    body: vec![
                        Stmt::Assign {
                            var: "acc".into(),
                            expr: Expr::concat(Expr::var("acc"), Expr::str("x")),
                        },
                        Stmt::Assign {
                            var: "i".into(),
                            expr: Expr::BinOp {
                                op: BinOp::Add,
                                lhs: Box::new(Expr::var("i")),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        },
                    ],
                },
                Stmt::Sink {
                    kind: SinkKind::HtmlOutput,
                    arg: Expr::var("acc"),
                    site: site(0),
                },
            ],
            vec![],
        );
        let obs = Interpreter::default().run(&u, &Request::new()).unwrap();
        assert_eq!(obs[0].rendered, "xxx");
    }

    #[test]
    fn error_cases() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::HtmlOutput,
                arg: Expr::var("nope"),
                site: site(0),
            }],
            vec![],
        );
        assert_eq!(
            Interpreter::default().run(&u, &Request::new()).unwrap_err(),
            ExecError::UndefinedVariable("nope".into())
        );

        let u = unit(
            vec![Stmt::Call {
                var: None,
                func: "ghost".into(),
                args: vec![],
            }],
            vec![],
        );
        assert_eq!(
            Interpreter::default().run(&u, &Request::new()).unwrap_err(),
            ExecError::UndefinedFunction("ghost".into())
        );

        let helper = Function::new("h", vec!["a".into()], vec![]);
        let u = unit(
            vec![Stmt::Call {
                var: None,
                func: "h".into(),
                args: vec![],
            }],
            vec![helper],
        );
        assert!(matches!(
            Interpreter::default().run(&u, &Request::new()).unwrap_err(),
            ExecError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn recursion_depth_capped() {
        // h calls itself forever.
        let helper = Function::new(
            "h",
            vec![],
            vec![Stmt::Call {
                var: None,
                func: "h".into(),
                args: vec![],
            }],
        );
        let u = unit(
            vec![Stmt::Call {
                var: None,
                func: "h".into(),
                args: vec![],
            }],
            vec![helper],
        );
        let err = Interpreter::default().run(&u, &Request::new()).unwrap_err();
        assert!(matches!(err, ExecError::CallDepth | ExecError::StepLimit));
    }

    #[test]
    fn crypto_and_auth_sinks_are_not_taint_sinks() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::CryptoHash,
                arg: param("data"),
                site: site(0),
            }],
            vec![],
        );
        let obs = Interpreter::default()
            .run(&u, &Request::new().with_param("data", "x"))
            .unwrap();
        assert!(!obs[0].tainted);
    }

    #[test]
    fn missing_inputs_read_as_empty_but_tainted_sources() {
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::SqlQuery,
                arg: param("absent"),
                site: site(0),
            }],
            vec![],
        );
        let obs = Interpreter::default().run(&u, &Request::new()).unwrap();
        assert_eq!(obs[0].rendered, "");
        assert!(obs[0].tainted, "source taint is a property of origin");
    }

    #[test]
    fn with_limits_validation() {
        let i = Interpreter::with_limits(10, 5, 2);
        assert_eq!(
            i,
            Interpreter {
                max_steps: 10,
                max_loop_iters: 5,
                max_call_depth: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_limits_panic() {
        let _ = Interpreter::with_limits(0, 1, 1);
    }

    #[test]
    fn request_surfaces_are_separate() {
        let mut req = Request::new();
        req.set(SourceKind::HttpParam, "k", "p");
        req.set(SourceKind::HttpHeader, "k", "h");
        req.set(SourceKind::Cookie, "k", "c");
        assert_eq!(req.get(SourceKind::HttpParam, "k"), "p");
        assert_eq!(req.get(SourceKind::HttpHeader, "k"), "h");
        assert_eq!(req.get(SourceKind::Cookie, "k"), "c");
        let req2 = Request::new()
            .with_header("ua", "x")
            .with_cookie("sid", "1");
        assert_eq!(req2.get(SourceKind::HttpHeader, "ua"), "x");
        assert_eq!(req2.get(SourceKind::Cookie, "sid"), "1");
    }

    #[test]
    fn request_fingerprint_is_content_addressed() {
        let mut a = Request::new();
        a.set(SourceKind::HttpParam, "q", "1");
        a.set(SourceKind::HttpParam, "mode", "debug");
        // Same content, different insertion order: identical fingerprint.
        let mut b = Request::new();
        b.set(SourceKind::HttpParam, "mode", "debug");
        b.set(SourceKind::HttpParam, "q", "1");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // Any differing value, name or surface changes it.
        let mut c = a.clone();
        c.set(SourceKind::HttpParam, "q", "2");
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = Request::new();
        d.set(SourceKind::HttpHeader, "q", "1");
        d.set(SourceKind::HttpHeader, "mode", "debug");
        assert_ne!(a.fingerprint(), d.fingerprint(), "surface matters");
        // Name/value boundaries are separated: ("ab","c") != ("a","bc").
        let e = Request::new().with_param("ab", "c");
        let f = Request::new().with_param("a", "bc");
        assert_ne!(e.fingerprint(), f.fingerprint());
        assert_ne!(Request::new().fingerprint(), 0, "empty request hashes");
    }
}
