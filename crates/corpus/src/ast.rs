//! The MiniWeb abstract syntax tree.
//!
//! MiniWeb is a small structured imperative language shaped like a web
//! request handler: values are strings, integers and booleans; data enters
//! through request sources, flows through lets, concatenations, conditionals
//! and helper calls, and exits at security-sensitive sinks.

use crate::types::{SanitizerKind, SinkKind, SourceKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Uniquely identifies a sink call site across the corpus: the benchmark
/// "case" that ground truth labels and tools report on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId {
    /// Index of the unit within the corpus.
    pub unit: u32,
    /// Index of the sink within the unit (textual order).
    pub sink: u32,
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}:s{}", self.unit, self.sink)
    }
}

/// Binary operators (conditions and light arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Equality (ints, strings, bools).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (ints).
    Lt,
    /// Greater-than (ints).
    Gt,
    /// Addition (ints).
    Add,
    /// Subtraction (ints).
    Sub,
}

impl BinOp {
    /// Surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Add => "+",
            BinOp::Sub => "-",
        }
    }
}

/// MiniWeb expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Attacker-controlled input: `param("id")`, `header("ua")`, …
    Source {
        /// Which request surface the data comes from.
        kind: SourceKind,
        /// The parameter/header/cookie name.
        name: String,
    },
    /// String concatenation.
    Concat(Box<Expr>, Box<Expr>),
    /// Sanitization of a sub-expression.
    Sanitize {
        /// The sanitizer applied.
        kind: SanitizerKind,
        /// The sanitized expression.
        arg: Box<Expr>,
    },
    /// Binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Reads a value from the unit's persistent store (e.g. a database
    /// row); the empty string when the key was never written. Taint
    /// persists through the store, enabling second-order injection flows.
    StoreRead {
        /// Store key.
        key: String,
    },
}

impl Expr {
    /// Convenience constructor for string literals.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Str(s.into())
    }

    /// Convenience constructor for variable references.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for concatenation.
    pub fn concat(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Concat(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for sanitization.
    pub fn sanitize(kind: SanitizerKind, arg: Expr) -> Expr {
        Expr::Sanitize {
            kind,
            arg: Box::new(arg),
        }
    }

    /// Whether the expression syntactically contains any source.
    pub fn contains_source(&self) -> bool {
        match self {
            Expr::Source { .. } => true,
            Expr::Concat(a, b) => a.contains_source() || b.contains_source(),
            Expr::Sanitize { arg, .. } => arg.contains_source(),
            Expr::BinOp { lhs, rhs, .. } => lhs.contains_source() || rhs.contains_source(),
            _ => false,
        }
    }

    /// Whether the expression syntactically contains a sanitizer call.
    pub fn contains_sanitizer(&self) -> bool {
        match self {
            Expr::Sanitize { .. } => true,
            Expr::Concat(a, b) => a.contains_sanitizer() || b.contains_sanitizer(),
            Expr::BinOp { lhs, rhs, .. } => lhs.contains_sanitizer() || rhs.contains_sanitizer(),
            _ => false,
        }
    }

    /// Variables referenced by the expression, in first-occurrence order.
    pub fn referenced_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) if !out.contains(&v.as_str()) => {
                out.push(v);
            }
            Expr::Concat(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Sanitize { arg, .. } => arg.collect_vars(out),
            Expr::BinOp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            _ => {}
        }
    }
}

/// MiniWeb statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `let x = expr;` — introduces or shadows a variable.
    Let {
        /// Variable name.
        var: String,
        /// Initializer.
        expr: Expr,
    },
    /// `x = expr;` — reassignment.
    Assign {
        /// Variable name.
        var: String,
        /// New value.
        expr: Expr,
    },
    /// Conditional with both branches.
    If {
        /// Condition (evaluated as a boolean).
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// Bounded while loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A security-sensitive sink call.
    Sink {
        /// The sink kind.
        kind: SinkKind,
        /// Argument expression.
        arg: Expr,
        /// Corpus-wide site identifier (benchmark case id).
        site: SiteId,
    },
    /// `let var = call(f, args);` — helper-function call with result bind.
    Call {
        /// Variable receiving the return value (`None` discards it).
        var: Option<String>,
        /// Callee name (must exist among the unit's helpers).
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `return expr;`
    Return(
        /// Returned value.
        Expr,
    ),
    /// Persists a value in the unit's store under a key (e.g. an INSERT).
    StoreWrite {
        /// Store key.
        key: String,
        /// The stored value.
        expr: Expr,
    },
}

/// A MiniWeb function: the unit entry handler or a helper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates a function.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> Self {
        Function {
            name: name.into(),
            params,
            body,
        }
    }
}

/// One benchmark code unit: an entry handler plus its private helpers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    /// Index within the corpus.
    pub id: u32,
    /// The entry-point handler invoked with a [`crate::interp::Request`].
    pub handler: Function,
    /// Helper functions callable from the handler (and each other).
    pub helpers: Vec<Function>,
}

impl Unit {
    /// Iterates over every sink statement in the unit (handler and
    /// helpers), in declaration order.
    pub fn sinks(&self) -> Vec<(&SinkKind, &Expr, SiteId)> {
        let mut out = Vec::new();
        collect_sinks(&self.handler.body, &mut out);
        for h in &self.helpers {
            collect_sinks(&h.body, &mut out);
        }
        out
    }

    /// Looks up a function (handler or helper) by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        if self.handler.name == name {
            return Some(&self.handler);
        }
        self.helpers.iter().find(|f| f.name == name)
    }

    /// Every `(source kind, name)` pair referenced anywhere in the unit —
    /// the input surface a crawler/spider would discover (form fields, API
    /// parameters). Dynamic scanners are allowed to see this; gate *values*
    /// remain hidden.
    pub fn referenced_sources(&self) -> Vec<(crate::types::SourceKind, String)> {
        let mut out = Vec::new();
        let mut visit_expr = |e: &Expr, out: &mut Vec<(crate::types::SourceKind, String)>| {
            collect_sources(e, out);
        };
        fn walk(
            body: &[Stmt],
            out: &mut Vec<(crate::types::SourceKind, String)>,
            visit: &mut impl FnMut(&Expr, &mut Vec<(crate::types::SourceKind, String)>),
        ) {
            for stmt in body {
                match stmt {
                    Stmt::Let { expr, .. }
                    | Stmt::Assign { expr, .. }
                    | Stmt::Return(expr)
                    | Stmt::StoreWrite { expr, .. } => visit(expr, out),
                    Stmt::Sink { arg, .. } => visit(arg, out),
                    Stmt::Call { args, .. } => {
                        for a in args {
                            visit(a, out);
                        }
                    }
                    Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        visit(cond, out);
                        walk(then_branch, out, visit);
                        walk(else_branch, out, visit);
                    }
                    Stmt::While { cond, body } => {
                        visit(cond, out);
                        walk(body, out, visit);
                    }
                }
            }
        }
        walk(&self.handler.body, &mut out, &mut visit_expr);
        for h in &self.helpers {
            walk(&h.body, &mut out, &mut visit_expr);
        }
        out.sort();
        out.dedup();
        out
    }

    /// Total statement count across handler and helpers (a code-size
    /// proxy).
    pub fn statement_count(&self) -> usize {
        fn count(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => 1 + count(then_branch) + count(else_branch),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.handler.body) + self.helpers.iter().map(|h| count(&h.body)).sum::<usize>()
    }
}

fn collect_sources(expr: &Expr, out: &mut Vec<(SourceKind, String)>) {
    match expr {
        Expr::Source { kind, name } => out.push((*kind, name.clone())),
        Expr::Concat(a, b) => {
            collect_sources(a, out);
            collect_sources(b, out);
        }
        Expr::Sanitize { arg, .. } => collect_sources(arg, out),
        Expr::BinOp { lhs, rhs, .. } => {
            collect_sources(lhs, out);
            collect_sources(rhs, out);
        }
        _ => {}
    }
}

fn collect_sinks<'a>(body: &'a [Stmt], out: &mut Vec<(&'a SinkKind, &'a Expr, SiteId)>) {
    for stmt in body {
        match stmt {
            Stmt::Sink { kind, arg, site } => out.push((kind, arg, *site)),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_sinks(then_branch, out);
                collect_sinks(else_branch, out);
            }
            Stmt::While { body, .. } => collect_sinks(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SanitizerKind;

    fn site(s: u32) -> SiteId {
        SiteId { unit: 0, sink: s }
    }

    #[test]
    fn site_id_display() {
        assert_eq!(SiteId { unit: 3, sink: 1 }.to_string(), "u3:s1");
    }

    #[test]
    fn expr_source_detection() {
        let e = Expr::concat(
            Expr::str("SELECT * FROM t WHERE id="),
            Expr::Source {
                kind: SourceKind::HttpParam,
                name: "id".into(),
            },
        );
        assert!(e.contains_source());
        assert!(!Expr::str("literal").contains_source());
        let sanitized = Expr::sanitize(SanitizerKind::EscapeSql, e.clone());
        assert!(sanitized.contains_source());
        assert!(sanitized.contains_sanitizer());
        assert!(!e.contains_sanitizer());
    }

    #[test]
    fn referenced_vars_dedup_and_order() {
        let e = Expr::concat(Expr::var("a"), Expr::concat(Expr::var("b"), Expr::var("a")));
        assert_eq!(e.referenced_vars(), vec!["a", "b"]);
        let bin = Expr::BinOp {
            op: BinOp::Eq,
            lhs: Box::new(Expr::var("x")),
            rhs: Box::new(Expr::Int(1)),
        };
        assert_eq!(bin.referenced_vars(), vec!["x"]);
    }

    #[test]
    fn unit_sink_collection_recurses() {
        let unit = Unit {
            id: 0,
            handler: Function::new(
                "handler",
                vec![],
                vec![
                    Stmt::Sink {
                        kind: SinkKind::SqlQuery,
                        arg: Expr::str("q"),
                        site: site(0),
                    },
                    Stmt::If {
                        cond: Expr::Bool(true),
                        then_branch: vec![Stmt::Sink {
                            kind: SinkKind::HtmlOutput,
                            arg: Expr::str("x"),
                            site: site(1),
                        }],
                        else_branch: vec![Stmt::While {
                            cond: Expr::Bool(false),
                            body: vec![Stmt::Sink {
                                kind: SinkKind::FileOpen,
                                arg: Expr::str("f"),
                                site: site(2),
                            }],
                        }],
                    },
                ],
            ),
            helpers: vec![Function::new(
                "helper",
                vec!["x".into()],
                vec![Stmt::Sink {
                    kind: SinkKind::ShellExec,
                    arg: Expr::var("x"),
                    site: site(3),
                }],
            )],
        };
        let sinks = unit.sinks();
        assert_eq!(sinks.len(), 4);
        assert_eq!(sinks[0].2, site(0));
        assert_eq!(sinks[3].2, site(3));
        assert!(unit.function("helper").is_some());
        assert!(unit.function("handler").is_some());
        assert!(unit.function("nope").is_none());
        assert_eq!(unit.statement_count(), 6);
    }

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Eq.symbol(), "==");
        assert_eq!(BinOp::Add.symbol(), "+");
    }
}
