//! The generated corpus and its ground truth.

use crate::ast::{SiteId, Unit};
use crate::interp::Request;
use crate::types::{FlowShape, VulnClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A multi-request attack session (requests share the unit's store).
pub type AttackSession = Vec<Request>;

/// Ground truth for one sink site (one benchmark case).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteInfo {
    /// The site this record labels.
    pub site: SiteId,
    /// The vulnerability class the site belongs to.
    pub class: VulnClass,
    /// Whether the site is actually vulnerable (by construction, and
    /// verified by the reference interpreter for reachable taint flows).
    pub vulnerable: bool,
    /// How the flow was constructed.
    pub shape: FlowShape,
    /// An attack session driving execution to the sink (with attack
    /// payloads on the tainted inputs); most shapes need one request,
    /// second-order flows need two. `None` for sites that are statically
    /// unreachable (dead guards). Used by tests to *verify* ground truth —
    /// detection tools never see it.
    pub witness: Option<AttackSession>,
}

/// A complete benchmark workload: units plus per-site ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    units: Vec<Unit>,
    sites: Vec<SiteInfo>,
    seed: u64,
    /// Global index of `units[0]` when this corpus is a shard of a larger
    /// streamed corpus; 0 (and omitted from JSON) for whole corpora, so
    /// the serialized form — and hence content fingerprints — of existing
    /// corpora is unchanged.
    base: u32,
}

// Hand-written (the vendored serde derive has no `skip_serializing_if`):
// `base` is omitted when 0 and defaults to 0 when absent, so whole-corpus
// JSON — and every content fingerprint derived from it — is unchanged.
impl Serialize for Corpus {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("units".to_string(), self.units.to_value()),
            ("sites".to_string(), self.sites.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if self.base != 0 {
            pairs.push(("base".to_string(), self.base.to_value()));
        }
        serde::Value::Object(pairs)
    }
}

impl Deserialize for Corpus {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Corpus {
            units: serde::from_field(value, "units")?,
            sites: serde::from_field(value, "sites")?,
            seed: serde::from_field(value, "seed")?,
            base: match value.get("base") {
                Some(v) => u32::from_value(v)?,
                None => 0,
            },
        })
    }
}

impl Corpus {
    /// Assembles a corpus from parts (used by the generator; typical users
    /// go through [`crate::CorpusBuilder`]).
    ///
    /// # Panics
    ///
    /// Panics if a site references a unit index outside `units`.
    pub fn from_parts(units: Vec<Unit>, sites: Vec<SiteInfo>, seed: u64) -> Self {
        Self::from_shard(units, sites, seed, 0)
    }

    /// Assembles a *shard*: a contiguous window of a larger streamed
    /// corpus whose first unit has global index `base`. Site ids stay
    /// global, so findings and ground truth from different shards of the
    /// same corpus compose without renumbering.
    ///
    /// # Panics
    ///
    /// Panics if a site references a unit index outside the window.
    pub fn from_shard(units: Vec<Unit>, sites: Vec<SiteInfo>, seed: u64, base: u32) -> Self {
        for s in &sites {
            let local = s.site.unit.checked_sub(base).map(|i| i as usize);
            assert!(
                local.is_some_and(|i| i < units.len()),
                "site {} references missing unit",
                s.site
            );
        }
        Corpus {
            units,
            sites,
            seed,
            base,
        }
    }

    /// The code units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Iterator over the ground-truth site records.
    pub fn sites(&self) -> impl Iterator<Item = &SiteInfo> {
        self.sites.iter()
    }

    /// Number of benchmark cases (sites).
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Looks up ground truth for a site.
    pub fn site_info(&self, site: SiteId) -> Option<&SiteInfo> {
        self.sites.iter().find(|s| s.site == site)
    }

    /// The unit containing a site.
    pub fn unit_of(&self, site: SiteId) -> Option<&Unit> {
        let local = site.unit.checked_sub(self.base)?;
        self.units.get(local as usize)
    }

    /// The seed the corpus was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Global index of the first unit (0 unless this is a shard).
    pub fn unit_base(&self) -> u32 {
        self.base
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CorpusStats {
        let mut by_class: BTreeMap<VulnClass, ClassCount> = BTreeMap::new();
        let mut by_shape: BTreeMap<FlowShape, usize> = BTreeMap::new();
        let mut vulnerable = 0usize;
        for s in &self.sites {
            let c = by_class.entry(s.class).or_default();
            c.total += 1;
            if s.vulnerable {
                c.vulnerable += 1;
                vulnerable += 1;
            }
            *by_shape.entry(s.shape).or_insert(0) += 1;
        }
        CorpusStats {
            units: self.units.len(),
            sites: self.sites.len(),
            vulnerable_sites: vulnerable,
            prevalence: if self.sites.is_empty() {
                f64::NAN
            } else {
                vulnerable as f64 / self.sites.len() as f64
            },
            by_class,
            by_shape,
            total_statements: self.units.iter().map(Unit::statement_count).sum(),
        }
    }
}

/// Per-class counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCount {
    /// Sites of the class.
    pub total: usize,
    /// Vulnerable sites of the class.
    pub vulnerable: usize,
}

/// Aggregate corpus statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of code units.
    pub units: usize,
    /// Number of benchmark cases (sink sites).
    pub sites: usize,
    /// Vulnerable cases.
    pub vulnerable_sites: usize,
    /// Fraction of vulnerable cases.
    pub prevalence: f64,
    /// Per-class breakdown.
    pub by_class: BTreeMap<VulnClass, ClassCount>,
    /// Flow-shape histogram.
    pub by_shape: BTreeMap<FlowShape, usize>,
    /// Total MiniWeb statements across the corpus (code-size proxy).
    pub total_statements: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Function;

    fn tiny() -> Corpus {
        let unit = Unit {
            id: 0,
            handler: Function::new("h", vec![], vec![]),
            helpers: vec![],
        };
        let site = SiteId { unit: 0, sink: 0 };
        Corpus::from_parts(
            vec![unit],
            vec![SiteInfo {
                site,
                class: VulnClass::Xss,
                vulnerable: true,
                shape: FlowShape::Direct,
                witness: Some(vec![Request::new()]),
            }],
            7,
        )
    }

    #[test]
    fn lookup_and_stats() {
        let c = tiny();
        assert_eq!(c.units().len(), 1);
        assert_eq!(c.site_count(), 1);
        assert_eq!(c.seed(), 7);
        let site = SiteId { unit: 0, sink: 0 };
        assert!(c.site_info(site).unwrap().vulnerable);
        assert!(c.unit_of(site).is_some());
        assert!(c.site_info(SiteId { unit: 0, sink: 9 }).is_none());
        let stats = c.stats();
        assert_eq!(stats.vulnerable_sites, 1);
        assert!((stats.prevalence - 1.0).abs() < 1e-12);
        assert_eq!(stats.by_class[&VulnClass::Xss].total, 1);
        assert_eq!(stats.by_shape[&FlowShape::Direct], 1);
    }

    #[test]
    #[should_panic(expected = "missing unit")]
    fn dangling_site_panics() {
        let _ = Corpus::from_parts(
            vec![],
            vec![SiteInfo {
                site: SiteId { unit: 0, sink: 0 },
                class: VulnClass::Xss,
                vulnerable: false,
                shape: FlowShape::LiteralOnly,
                witness: None,
            }],
            0,
        );
    }

    #[test]
    fn shard_lookup_uses_global_site_ids() {
        let unit = Unit {
            id: 5,
            handler: Function::new("h", vec![], vec![]),
            helpers: vec![],
        };
        let site = SiteId { unit: 5, sink: 0 };
        let shard = Corpus::from_shard(
            vec![unit],
            vec![SiteInfo {
                site,
                class: VulnClass::Xss,
                vulnerable: false,
                shape: FlowShape::LiteralOnly,
                witness: None,
            }],
            7,
            5,
        );
        assert_eq!(shard.unit_base(), 5);
        assert_eq!(shard.unit_of(site).unwrap().id, 5);
        assert!(shard.unit_of(SiteId { unit: 4, sink: 0 }).is_none());
        assert!(shard.unit_of(SiteId { unit: 6, sink: 0 }).is_none());
    }

    #[test]
    #[should_panic(expected = "missing unit")]
    fn shard_site_below_base_panics() {
        let unit = Unit {
            id: 5,
            handler: Function::new("h", vec![], vec![]),
            helpers: vec![],
        };
        let _ = Corpus::from_shard(
            vec![unit],
            vec![SiteInfo {
                site: SiteId { unit: 4, sink: 0 },
                class: VulnClass::Xss,
                vulnerable: false,
                shape: FlowShape::LiteralOnly,
                witness: None,
            }],
            7,
            5,
        );
    }

    #[test]
    fn whole_corpus_json_has_no_base_field() {
        let c = tiny();
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("\"base\""));
        let back: Corpus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn empty_corpus_stats() {
        let c = Corpus::from_parts(vec![], vec![], 0);
        let s = c.stats();
        assert_eq!(s.units, 0);
        assert!(s.prevalence.is_nan());
    }
}
