//! Vocabulary types of the MiniWeb domain: vulnerability classes, taint
//! sources, sinks, sanitizers and flow shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The vulnerability classes the generator can inject, tagged with their
/// CWE identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VulnClass {
    /// CWE-89: SQL injection through an unsanitized query sink.
    SqlInjection,
    /// CWE-79: cross-site scripting through an HTML output sink.
    Xss,
    /// CWE-78: OS command injection through a shell-exec sink.
    CommandInjection,
    /// CWE-22: path traversal through a file-open sink.
    PathTraversal,
    /// CWE-798: hardcoded credentials at an authentication sink.
    HardcodedCredentials,
    /// CWE-327: use of a broken cryptographic hash algorithm.
    WeakHash,
}

impl VulnClass {
    /// The CWE number.
    pub fn cwe(self) -> u32 {
        match self {
            VulnClass::SqlInjection => 89,
            VulnClass::Xss => 79,
            VulnClass::CommandInjection => 78,
            VulnClass::PathTraversal => 22,
            VulnClass::HardcodedCredentials => 798,
            VulnClass::WeakHash => 327,
        }
    }

    /// All classes in presentation order.
    pub fn all() -> &'static [VulnClass] {
        &[
            VulnClass::SqlInjection,
            VulnClass::Xss,
            VulnClass::CommandInjection,
            VulnClass::PathTraversal,
            VulnClass::HardcodedCredentials,
            VulnClass::WeakHash,
        ]
    }

    /// Whether the class is an injection (taint-flow) class, as opposed to
    /// a configuration/pattern class.
    pub fn is_taint_based(self) -> bool {
        !matches!(self, VulnClass::HardcodedCredentials | VulnClass::WeakHash)
    }

    /// The sink kind this class manifests at.
    pub fn sink(self) -> SinkKind {
        match self {
            VulnClass::SqlInjection => SinkKind::SqlQuery,
            VulnClass::Xss => SinkKind::HtmlOutput,
            VulnClass::CommandInjection => SinkKind::ShellExec,
            VulnClass::PathTraversal => SinkKind::FileOpen,
            VulnClass::HardcodedCredentials => SinkKind::Authenticate,
            VulnClass::WeakHash => SinkKind::CryptoHash,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            VulnClass::SqlInjection => "SQL injection",
            VulnClass::Xss => "XSS",
            VulnClass::CommandInjection => "command injection",
            VulnClass::PathTraversal => "path traversal",
            VulnClass::HardcodedCredentials => "hardcoded credentials",
            VulnClass::WeakHash => "weak hash",
        }
    }
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (CWE-{})", self.name(), self.cwe())
    }
}

/// Where attacker-controlled data enters a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceKind {
    /// An HTTP request parameter.
    HttpParam,
    /// An HTTP request header.
    HttpHeader,
    /// A request cookie.
    Cookie,
}

impl SourceKind {
    /// All source kinds.
    pub fn all() -> &'static [SourceKind] {
        &[
            SourceKind::HttpParam,
            SourceKind::HttpHeader,
            SourceKind::Cookie,
        ]
    }

    /// The MiniWeb surface syntax for the source.
    pub fn keyword(self) -> &'static str {
        match self {
            SourceKind::HttpParam => "param",
            SourceKind::HttpHeader => "header",
            SourceKind::Cookie => "cookie",
        }
    }
}

/// Security-sensitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SinkKind {
    /// Executes an SQL statement.
    SqlQuery,
    /// Writes into an HTML response.
    HtmlOutput,
    /// Runs a shell command.
    ShellExec,
    /// Opens a file by path.
    FileOpen,
    /// Checks a credential.
    Authenticate,
    /// Hashes data with a named algorithm.
    CryptoHash,
}

impl SinkKind {
    /// The MiniWeb surface syntax for the sink.
    pub fn keyword(self) -> &'static str {
        match self {
            SinkKind::SqlQuery => "sql_query",
            SinkKind::HtmlOutput => "html_output",
            SinkKind::ShellExec => "shell_exec",
            SinkKind::FileOpen => "file_open",
            SinkKind::Authenticate => "authenticate",
            SinkKind::CryptoHash => "crypto_hash",
        }
    }

    /// Whether tainted data reaching this sink constitutes a vulnerability
    /// (taint-relevant sinks).
    pub fn is_taint_sink(self) -> bool {
        !matches!(self, SinkKind::Authenticate | SinkKind::CryptoHash)
    }
}

/// Sanitization / validation primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SanitizerKind {
    /// Escapes SQL metacharacters — protects [`SinkKind::SqlQuery`] only.
    EscapeSql,
    /// HTML-encodes — protects [`SinkKind::HtmlOutput`] only.
    EscapeHtml,
    /// Shell-quotes — protects [`SinkKind::ShellExec`] only.
    ShellQuote,
    /// Canonicalizes and confines a path — protects [`SinkKind::FileOpen`]
    /// only.
    NormalizePath,
    /// Parses as an integer, rejecting anything else — removes taint for
    /// **all** sinks.
    ValidateInt,
    /// Checks membership in a fixed whitelist — removes taint for **all**
    /// sinks.
    WhitelistCheck,
}

impl SanitizerKind {
    /// The MiniWeb surface syntax for the sanitizer.
    pub fn keyword(self) -> &'static str {
        match self {
            SanitizerKind::EscapeSql => "escape_sql",
            SanitizerKind::EscapeHtml => "escape_html",
            SanitizerKind::ShellQuote => "shell_quote",
            SanitizerKind::NormalizePath => "normalize_path",
            SanitizerKind::ValidateInt => "validate_int",
            SanitizerKind::WhitelistCheck => "whitelist_check",
        }
    }

    /// Whether this sanitizer neutralizes taint for the given sink.
    pub fn protects(self, sink: SinkKind) -> bool {
        match self {
            SanitizerKind::EscapeSql => sink == SinkKind::SqlQuery,
            SanitizerKind::EscapeHtml => sink == SinkKind::HtmlOutput,
            SanitizerKind::ShellQuote => sink == SinkKind::ShellExec,
            SanitizerKind::NormalizePath => sink == SinkKind::FileOpen,
            SanitizerKind::ValidateInt | SanitizerKind::WhitelistCheck => true,
        }
    }

    /// The sanitizer that correctly protects a sink (the canonical choice).
    pub fn correct_for(sink: SinkKind) -> Option<SanitizerKind> {
        match sink {
            SinkKind::SqlQuery => Some(SanitizerKind::EscapeSql),
            SinkKind::HtmlOutput => Some(SanitizerKind::EscapeHtml),
            SinkKind::ShellExec => Some(SanitizerKind::ShellQuote),
            SinkKind::FileOpen => Some(SanitizerKind::NormalizePath),
            SinkKind::Authenticate | SinkKind::CryptoHash => None,
        }
    }

    /// A plausible-but-wrong sanitizer for a sink (used for disguised
    /// vulnerabilities). Returns a sanitizer that does **not** protect the
    /// sink.
    pub fn mismatched_for(sink: SinkKind) -> Option<SanitizerKind> {
        match sink {
            SinkKind::SqlQuery => Some(SanitizerKind::EscapeHtml),
            SinkKind::HtmlOutput => Some(SanitizerKind::EscapeSql),
            SinkKind::ShellExec => Some(SanitizerKind::EscapeSql),
            SinkKind::FileOpen => Some(SanitizerKind::EscapeHtml),
            SinkKind::Authenticate | SinkKind::CryptoHash => None,
        }
    }
}

/// How a generated flow was constructed — recorded in the ground truth for
/// diagnostics and for stratified analysis of tool behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlowShape {
    /// Source feeds the sink directly in one expression.
    Direct,
    /// Source flows through a chain of assignments and concatenations.
    Chained,
    /// The vulnerable sink sits behind a *satisfiable* input condition.
    InputGated,
    /// The tainted input is accumulated across loop iterations before
    /// reaching the sink — exercises loop fixpoints in static analysis.
    LoopCarried,
    /// The flow crosses a helper-function boundary.
    Interprocedural,
    /// Correctly sanitized for the sink — not vulnerable.
    SanitizedCorrect,
    /// Sanitized with the wrong sanitizer — still vulnerable.
    SanitizedMismatch,
    /// One path sanitizes, another does not — vulnerable.
    SanitizedPartial,
    /// The flow is guarded by a constant-false condition — unreachable,
    /// not vulnerable, but a classic static-analysis false positive.
    DeadGuard,
    /// The sink consumes only literals — trivially safe.
    LiteralOnly,
    /// Second-order flow: the tainted input is persisted to the store by
    /// one request and reaches the sink when a later request reads it
    /// back — vulnerable, and invisible to single-request dynamic
    /// scanning.
    Stored,
    /// The stored value is a literal — the safe counterpart of
    /// [`FlowShape::Stored`] (pattern tools that distrust every store
    /// read raise a false positive here).
    StoredLiteral,
    /// Pattern-class site (credentials / weak hash), vulnerable variant.
    BadConfiguration,
    /// Pattern-class site, safe variant.
    GoodConfiguration,
}

impl FlowShape {
    /// Whether this shape is vulnerable by construction.
    pub fn is_vulnerable(self) -> bool {
        matches!(
            self,
            FlowShape::Direct
                | FlowShape::Chained
                | FlowShape::InputGated
                | FlowShape::LoopCarried
                | FlowShape::Interprocedural
                | FlowShape::SanitizedMismatch
                | FlowShape::SanitizedPartial
                | FlowShape::Stored
                | FlowShape::BadConfiguration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwe_numbers() {
        assert_eq!(VulnClass::SqlInjection.cwe(), 89);
        assert_eq!(VulnClass::Xss.cwe(), 79);
        assert_eq!(VulnClass::CommandInjection.cwe(), 78);
        assert_eq!(VulnClass::PathTraversal.cwe(), 22);
        assert_eq!(VulnClass::HardcodedCredentials.cwe(), 798);
        assert_eq!(VulnClass::WeakHash.cwe(), 327);
        assert_eq!(VulnClass::all().len(), 6);
    }

    #[test]
    fn taint_based_split() {
        assert!(VulnClass::SqlInjection.is_taint_based());
        assert!(!VulnClass::WeakHash.is_taint_based());
        assert!(!VulnClass::HardcodedCredentials.is_taint_based());
        for &c in VulnClass::all() {
            assert_eq!(c.is_taint_based(), c.sink().is_taint_sink());
        }
    }

    #[test]
    fn display_includes_cwe() {
        assert_eq!(VulnClass::Xss.to_string(), "XSS (CWE-79)");
    }

    #[test]
    fn sanitizer_matching() {
        assert!(SanitizerKind::EscapeSql.protects(SinkKind::SqlQuery));
        assert!(!SanitizerKind::EscapeSql.protects(SinkKind::HtmlOutput));
        assert!(SanitizerKind::ValidateInt.protects(SinkKind::SqlQuery));
        assert!(SanitizerKind::WhitelistCheck.protects(SinkKind::FileOpen));
    }

    #[test]
    fn correct_and_mismatched_are_consistent() {
        for sink in [
            SinkKind::SqlQuery,
            SinkKind::HtmlOutput,
            SinkKind::ShellExec,
            SinkKind::FileOpen,
        ] {
            let correct = SanitizerKind::correct_for(sink).unwrap();
            assert!(correct.protects(sink), "{sink:?}");
            let wrong = SanitizerKind::mismatched_for(sink).unwrap();
            assert!(!wrong.protects(sink), "{sink:?}");
        }
        assert!(SanitizerKind::correct_for(SinkKind::Authenticate).is_none());
        assert!(SanitizerKind::mismatched_for(SinkKind::CryptoHash).is_none());
    }

    #[test]
    fn flow_shape_vulnerability() {
        assert!(FlowShape::Direct.is_vulnerable());
        assert!(FlowShape::SanitizedMismatch.is_vulnerable());
        assert!(!FlowShape::SanitizedCorrect.is_vulnerable());
        assert!(!FlowShape::DeadGuard.is_vulnerable());
        assert!(!FlowShape::LiteralOnly.is_vulnerable());
        assert!(FlowShape::BadConfiguration.is_vulnerable());
        assert!(!FlowShape::GoodConfiguration.is_vulnerable());
        assert!(FlowShape::Stored.is_vulnerable());
        assert!(FlowShape::LoopCarried.is_vulnerable());
        assert!(!FlowShape::StoredLiteral.is_vulnerable());
    }

    #[test]
    fn keywords_are_distinct() {
        let mut kws: Vec<&str> = SourceKind::all().iter().map(|s| s.keyword()).collect();
        kws.sort_unstable();
        kws.dedup();
        assert_eq!(kws.len(), SourceKind::all().len());
    }
}
