//! Flat bytecode register VM: the interpreter's fastest execution tier.
//!
//! The slot-compiled walker in [`crate::compile`] removed name lookups and
//! body clones but still pays tree-recursion overhead on every expression
//! node: a `match` dispatch, a `tick()` branch, and a fresh [`Value`]
//! allocation per node. This module linearizes each compiled function into
//! a flat instruction stream executed over a dense register file, which is
//! where the remaining interpretation cost lives:
//!
//! * **Batched fuel guards** — the step budget is charged per statement and
//!   per expression node at *identical* points to the tree-walker, but in
//!   one [`Insn::Guard`] per statement instead of one branch per node.
//!   Expressions cannot change the environment mid-evaluation (calls are
//!   statements in MiniWeb), so the compiler pre-computes the pre-order
//!   tick count between consecutive variable reads and the guard replays
//!   `tick… check-var… tick…` exactly: `StepLimit` versus
//!   `UndefinedVariable` is decided on the same step as the oracle.
//! * **Superinstructions** for the generator's hot shapes:
//!   [`Insn::Concat`] flattens a whole `Concat` tree into one n-ary append
//!   (a single string allocation, left-to-right taint merge identical to
//!   the pairwise merge), and [`Insn::BranchCmpFalse`] fuses the
//!   `if (source == "literal")` gate guards into an allocation-free
//!   compare-and-branch over operand *views* (no boolean [`Value`] is ever
//!   built).
//! * **Register allocation** — operands are `Const` (literal pool), `Slot`
//!   (a named variable), `Reg` (an expression temporary, consumed by move),
//!   or `Source` (request input read on demand). Temporaries use a
//!   stack-discipline allocator reset per statement; loop-iteration
//!   counters are pinned registers below the temp floor. Frames come from
//!   the same [`InterpScratch`] pool as the slot walker and are returned
//!   on success *and* on error.
//! * **Inline-cached calls** — call targets and arity are resolved at
//!   compile time; a resolved call site is a direct [`Insn::Call`] (an
//!   inline-cache *hit* when executed). Unresolvable or wrong-arity sites
//!   lower to [`Insn::CallUndefined`] / [`Insn::CallArityErr`] stubs that
//!   raise only if control reaches them — dead-guard shapes must compile
//!   and run, exactly like the reference interpreter — and count as
//!   *misses*.
//!
//! Per-session instruction and inline-cache totals are flushed to the
//! telemetry registry (`interp.vm.instructions`,
//! `interp.vm.inline_cache.{hits,misses}`) with the same always-live
//! counter pattern as `interp.env.interned_slots`.
//!
//! Equivalence with [`Interpreter::run_session_treewalk`] (and the retained
//! slot walker, [`Interpreter::run_compiled_slotwalk`]) is bit-for-bit:
//! observations, errors, and the step at which limits fire. The three-tier
//! property suite in `crates/corpus/tests/kernel_equivalence.rs` enforces
//! it over generated corpora and attack sessions.

use crate::ast::{BinOp, SiteId};
use crate::compile::{
    take_frame, CExpr, CStmt, CallTarget, CompiledFunction, CompiledUnit, InterpScratch,
};
use crate::interp::{
    apply_sanitizer, apply_sanitizer_raw, eval_binop, Data, ExecError, Interpreter, Request,
    SinkObservation, SinkSet, TaintList, TaintTag, Value,
};
use crate::types::{SanitizerKind, SinkKind, SourceKind};
use std::fmt::Write as _;
use std::sync::Arc;

/// Flushes one session's VM totals to the process-wide telemetry registry.
/// Counter handles are resolved once and cached; recording is a relaxed
/// atomic add per counter (always live, like `interp.env.interned_slots`).
fn record_vm_session(instructions: u64, ic_hits: u64, ic_misses: u64) {
    use std::sync::{Arc, OnceLock};
    use vdbench_telemetry::registry::Counter;
    static INSNS: OnceLock<Arc<Counter>> = OnceLock::new();
    static HITS: OnceLock<Arc<Counter>> = OnceLock::new();
    static MISSES: OnceLock<Arc<Counter>> = OnceLock::new();
    if instructions > 0 {
        INSNS
            .get_or_init(|| vdbench_telemetry::registry::global().counter("interp.vm.instructions"))
            .add(instructions);
    }
    if ic_hits > 0 {
        HITS.get_or_init(|| {
            vdbench_telemetry::registry::global().counter("interp.vm.inline_cache.hits")
        })
        .add(ic_hits);
    }
    if ic_misses > 0 {
        MISSES
            .get_or_init(|| {
                vdbench_telemetry::registry::global().counter("interp.vm.inline_cache.misses")
            })
            .add(ic_misses);
    }
}

/// Where an instruction reads a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    /// Index into the function's literal pool (always untainted).
    Const(u32),
    /// A named variable's register (read by clone; the variable persists).
    Slot(u32),
    /// An expression temporary (read by move; produced and consumed once).
    Reg(u32),
    /// Index into the function's source table: the request input is read
    /// on demand, so trivial `Source` operands never build an intermediate
    /// [`Value`].
    Source(u32),
}

/// One `tick… check-var` run inside a [`Insn::Guard`]: charge `ticks`
/// steps (pre-order node count since the previous check, including the
/// variable's own node), then require `slot` to be defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GuardCheck {
    /// Steps to charge before the check.
    pub(crate) ticks: u32,
    /// Register that must be `Some` afterwards.
    pub(crate) slot: u32,
}

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Insn {
    /// Batched fuel charge + undefined-variable checks for one statement
    /// (see the module docs for why batching preserves error order).
    Guard {
        /// Interleaved `tick`/check runs, in source pre-order.
        pre: Box<[GuardCheck]>,
        /// Steps to charge after the last check.
        tail: u32,
    },
    /// `dst = operand` (the lowering of `Assign` from a trivial
    /// expression, and of argument/return materialization).
    Copy {
        /// Destination register.
        dst: u32,
        /// Source operand.
        src: Operand,
    },
    /// n-ary concatenation superinstruction over a flattened `Concat`
    /// tree: one output string, pre-order taint merge.
    Concat {
        /// Destination register.
        dst: u32,
        /// Flattened parts, left to right. In `append` mode the leading
        /// `Var(dst)` leaf is elided from the list.
        parts: Box<[Operand]>,
        /// Accumulator mode: `dst = dst + parts…`. The destination's
        /// string buffer and taint set are stolen and appended in place,
        /// so `acc = acc + x` loop bodies never re-copy the accumulator.
        append: bool,
    },
    /// Apply a sanitizer to the operand.
    Sanitize {
        /// Destination register.
        dst: u32,
        /// Sanitizer to apply.
        kind: SanitizerKind,
        /// Input operand.
        src: Operand,
    },
    /// In-place counter arithmetic superinstruction: the lowering of
    /// `x = x ± <int>` (`x`'s taints survive unchanged, exactly as the
    /// pairwise merge with an untainted literal leaves them).
    AddConst {
        /// Register mutated in place.
        slot: u32,
        /// Literal operand (already coerced at compile time).
        delta: i64,
        /// `true` for `Sub`, `false` for `Add` (both wrapping).
        sub: bool,
    },
    /// Generic binary operation (the fused compare-branches cover the hot
    /// conditional uses; this remains for arithmetic and bound values).
    Binary {
        /// Destination register.
        dst: u32,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Read a persistent-store key (missing keys yield `""`).
    StoreRead {
        /// Destination register.
        dst: u32,
        /// Index into the function's key table.
        key: u32,
    },
    /// Write a persistent-store key.
    StoreWrite {
        /// Index into the function's key table.
        key: u32,
        /// Stored operand.
        src: Operand,
    },
    /// Security-sensitive sink: record a [`SinkObservation`].
    Sink {
        /// Sink kind.
        kind: SinkKind,
        /// Benchmark case id.
        site: SiteId,
        /// Observed operand.
        src: Operand,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Jump when the operand is falsy (generic conditional).
    BranchFalse {
        /// Condition operand.
        cond: Operand,
        /// Target when falsy.
        target: u32,
    },
    /// Fused compare-and-branch superinstruction: evaluates
    /// `lhs op rhs` over operand views (no boolean `Value` allocated) and
    /// jumps when the comparison is false. Only `Eq`/`Ne`/`Lt`/`Gt`
    /// conditions lower to this form.
    BranchCmpFalse {
        /// Comparison operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Target when the comparison is false.
        target: u32,
    },
    /// Whole-loop summarization of the generator's counting shape
    /// `while (x < <int>) { x = x + <int>; }`: the iteration count (under
    /// the runtime `max_loop_iters` backstop) is computed arithmetically,
    /// the exact oracle tick total is charged in one batch after the first
    /// variable check, and the final counter value is written once. Fires
    /// the same `StepLimit`/`UndefinedVariable` as iterating would —
    /// nothing else in the loop can fail or observe intermediate states.
    CountLoop {
        /// Counter register (read, checked, and rewritten in place).
        slot: u32,
        /// Loop bound (the `Lt` right-hand literal).
        limit: i64,
        /// Per-iteration increment (the body's `Add` literal; wrapping).
        delta: i64,
    },
    /// Zero a loop-iteration counter register.
    LoopReset {
        /// Counter register.
        reg: u32,
    },
    /// Bounded-loop backstop: increment the counter and exit the loop once
    /// it exceeds `max_loop_iters` (the tree-walker's silent `break`).
    LoopBound {
        /// Counter register.
        reg: u32,
        /// Loop-exit instruction index.
        exit: u32,
    },
    /// Call-depth check for a resolved, arity-correct call site; runs
    /// before the argument guard so `CallDepth` outranks argument errors
    /// exactly as in the oracle.
    EnterCall,
    /// Dispatch to a compile-time-resolved callee (inline-cache hit).
    Call {
        /// Callee index into [`CompiledUnit::functions`].
        callee: u32,
        /// Argument operands (parameters occupy registers `0..argc`).
        args: Box<[Operand]>,
        /// Destination register of the bound result, if any.
        dst: Option<u32>,
    },
    /// Deferred [`ExecError::UndefinedFunction`]: the unit defines no such
    /// function, but dead-guard shapes must only fail if executed
    /// (inline-cache miss).
    CallUndefined {
        /// The unresolvable callee name.
        name: Box<str>,
    },
    /// Deferred [`ExecError::ArityMismatch`], same dead-guard rationale
    /// (inline-cache miss).
    CallArityErr {
        /// Callee name.
        func: Box<str>,
        /// Declared parameter count.
        expected: u32,
        /// Supplied argument count.
        actual: u32,
    },
    /// Return from the current function.
    Return {
        /// Returned operand.
        src: Operand,
    },
}

/// One function lowered to bytecode: the instruction stream plus the
/// per-function pools its operands index into.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FuncCode {
    /// Register-file size: named slots, then loop counters and expression
    /// temporaries (high-water mark across the body).
    pub(crate) n_regs: usize,
    /// Literal pool (deduplicated, always untainted).
    pub(crate) consts: Vec<Value>,
    /// Source table: request surface + input name per `Source` operand.
    /// The name is interned as an `Arc<str>` so the taint tag built on
    /// every `Source` load shares it instead of allocating.
    pub(crate) sources: Vec<(SourceKind, Arc<str>)>,
    /// Persistent-store key table.
    pub(crate) keys: Vec<String>,
    /// The linearized body.
    pub(crate) code: Vec<Insn>,
}

// ---------------------------------------------------------------------------
// Compiler: CStmt/CExpr → Insn stream
// ---------------------------------------------------------------------------

/// Lowers one slot-compiled function to bytecode. `funcs` is the whole
/// unit (handler first) so resolved call sites can check arity at compile
/// time.
pub(crate) fn compile_fn(funcs: &[CompiledFunction], f: &CompiledFunction) -> FuncCode {
    let n_slots = u32::try_from(f.slot_names.len()).expect("slot count fits in u32");
    let mut reads = vec![0u32; f.slot_names.len()];
    collect_reads(&f.body, &mut reads);
    let mut c = FnCompiler {
        funcs,
        reads,
        loop_depth: 0,
        consts: Vec::new(),
        sources: Vec::new(),
        keys: Vec::new(),
        code: Vec::new(),
        floor: n_slots,
        next: n_slots,
        max: n_slots,
    };
    c.compile_block(&f.body);
    FuncCode {
        n_regs: c.max as usize,
        consts: c.consts,
        sources: c.sources,
        keys: c.keys,
        code: c.code,
    }
}

struct FnCompiler<'a> {
    funcs: &'a [CompiledFunction],
    /// Per-slot read counts across the whole function. Zero-read slots
    /// are dead stores: they keep their fuel guard (ticks and variable
    /// checks are observable) but skip the value computation — MiniWeb
    /// expressions are pure (calls are statements), so nothing else can
    /// tell. Single-read slots outside loops get their one read promoted
    /// to a consuming register read (the value moves instead of cloning).
    reads: Vec<u32>,
    /// How many `while` constructs enclose the code being lowered.
    /// Inside a loop a textual read can execute many times, so last-read
    /// promotion is disabled.
    loop_depth: u32,
    consts: Vec<Value>,
    sources: Vec<(SourceKind, Arc<str>)>,
    keys: Vec<String>,
    code: Vec<Insn>,
    /// First register available as an expression temporary: named slots
    /// plus any live loop counters sit below the floor.
    floor: u32,
    /// Next free temporary (stack discipline, reset per statement).
    next: u32,
    /// Register-file high-water mark.
    max: u32,
}

impl FnCompiler<'_> {
    fn alloc(&mut self) -> u32 {
        let r = self.next;
        self.next += 1;
        self.max = self.max.max(self.next);
        r
    }

    fn const_idx(&mut self, v: Value) -> u32 {
        let i = self.consts.iter().position(|c| *c == v).unwrap_or_else(|| {
            self.consts.push(v);
            self.consts.len() - 1
        });
        u32::try_from(i).expect("const pool fits in u32")
    }

    fn source_idx(&mut self, kind: SourceKind, name: &str) -> u32 {
        let i = self
            .sources
            .iter()
            .position(|(k, n)| *k == kind && &**n == name)
            .unwrap_or_else(|| {
                self.sources.push((kind, Arc::from(name)));
                self.sources.len() - 1
            });
        u32::try_from(i).expect("source table fits in u32")
    }

    fn key_idx(&mut self, key: &str) -> u32 {
        let i = self.keys.iter().position(|k| k == key).unwrap_or_else(|| {
            self.keys.push(key.to_string());
            self.keys.len() - 1
        });
        u32::try_from(i).expect("key table fits in u32")
    }

    /// Emits the statement's fuel guard: `base` statement ticks, then the
    /// pre-order tick/variable-check interleaving of `exprs`.
    fn emit_guard(&mut self, base: u32, exprs: &[&CExpr]) {
        if let Some(g) = guard_insn(base, exprs) {
            self.code.push(g);
        }
    }

    fn emit_jump_placeholder(&mut self) -> usize {
        let at = self.code.len();
        self.code.push(Insn::Jump { target: u32::MAX });
        at
    }

    /// Points a placeholder branch/jump at the *next* instruction index.
    fn patch_here(&mut self, at: usize) {
        let t = u32::try_from(self.code.len()).expect("code length fits in u32");
        match &mut self.code[at] {
            Insn::Jump { target }
            | Insn::BranchFalse { target, .. }
            | Insn::BranchCmpFalse { target, .. } => *target = t,
            Insn::LoopBound { exit, .. } => *exit = t,
            other => unreachable!("patched a non-branch instruction: {other:?}"),
        }
    }

    fn compile_block(&mut self, body: &[CStmt]) {
        for s in body {
            self.compile_stmt(s);
        }
    }

    fn compile_stmt(&mut self, stmt: &CStmt) {
        self.next = self.floor;
        match stmt {
            CStmt::Assign { slot, expr } => {
                self.emit_guard(1, &[expr]);
                if self.reads[*slot as usize] == 0 {
                    return; // dead store: fuel and checks charged, value unobservable
                }
                if let Some(insn) = counter_arith(*slot, expr) {
                    self.code.push(insn);
                    return;
                }
                self.compile_into(*slot, expr);
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.emit_guard(1, &[cond]);
                if let Some(taken) = const_truthy(cond) {
                    // Constant condition: no runtime dispatch, but the dead
                    // branch still compiles (deferred call stubs and their
                    // shapes must survive) behind a static jump.
                    let (live, dead) = if taken {
                        (then_branch, else_branch)
                    } else {
                        (else_branch, then_branch)
                    };
                    self.compile_block(live);
                    if !dead.is_empty() {
                        let jend = self.emit_jump_placeholder();
                        self.compile_block(dead);
                        self.patch_here(jend);
                    }
                    return;
                }
                // Branches that lower to the *same* guard sequence (the
                // generator's `{ let x = 20 } else { let x = 0 }` filler
                // with `x` dead) don't need the condition dispatched at
                // all: either path charges identical fuel.
                if let (Some(tg), Some(eg)) =
                    (self.guards_only(then_branch), self.guards_only(else_branch))
                {
                    if tg == eg {
                        self.code.extend(tg);
                        return;
                    }
                }
                let jfalse = self.compile_branch_false(cond);
                self.compile_block(then_branch);
                if else_branch.is_empty() {
                    self.patch_here(jfalse);
                } else {
                    let jend = self.emit_jump_placeholder();
                    self.patch_here(jfalse);
                    self.compile_block(else_branch);
                    self.patch_here(jend);
                }
            }
            CStmt::While { cond, body } => {
                // One statement tick up front; the per-iteration cost is
                // the condition guard at the loop head.
                self.emit_guard(1, &[]);
                if let Some(insn) = count_loop(cond, body) {
                    self.code.push(insn);
                    return;
                }
                self.loop_depth += 1;
                let ctr = self.floor;
                self.floor += 1;
                self.next = self.floor;
                self.max = self.max.max(self.floor);
                self.code.push(Insn::LoopReset { reg: ctr });
                let head = u32::try_from(self.code.len()).expect("code length fits in u32");
                self.emit_guard(0, &[cond]);
                let jexit = self.compile_branch_false(cond);
                let bound = self.code.len();
                self.code.push(Insn::LoopBound {
                    reg: ctr,
                    exit: u32::MAX,
                });
                self.compile_block(body);
                self.code.push(Insn::Jump { target: head });
                self.patch_here(jexit);
                self.patch_here(bound);
                self.floor -= 1;
                self.loop_depth -= 1;
            }
            CStmt::Sink { kind, arg, site } => {
                self.emit_guard(1, &[arg]);
                let src = self.compile_operand(arg);
                self.code.push(Insn::Sink {
                    kind: *kind,
                    site: *site,
                    src,
                });
            }
            CStmt::Call { dst, target, args } => {
                self.emit_guard(1, &[]);
                match target {
                    CallTarget::Undefined(name) => {
                        self.code.push(Insn::CallUndefined {
                            name: name.as_str().into(),
                        });
                    }
                    CallTarget::Resolved(idx) => {
                        let callee = &self.funcs[*idx as usize];
                        if callee.n_params == args.len() {
                            self.code.push(Insn::EnterCall);
                            let refs: Vec<&CExpr> = args.iter().collect();
                            self.emit_guard(0, &refs);
                            let ops: Vec<Operand> =
                                args.iter().map(|a| self.compile_operand(a)).collect();
                            self.code.push(Insn::Call {
                                callee: *idx,
                                args: ops.into(),
                                dst: *dst,
                            });
                        } else {
                            self.code.push(Insn::CallArityErr {
                                func: callee.name.as_str().into(),
                                expected: u32::try_from(callee.n_params)
                                    .expect("param count fits in u32"),
                                actual: u32::try_from(args.len()).expect("arg count fits in u32"),
                            });
                        }
                    }
                }
            }
            CStmt::Return(expr) => {
                self.emit_guard(1, &[expr]);
                let src = self.compile_operand(expr);
                self.code.push(Insn::Return { src });
            }
            CStmt::StoreWrite { key, expr } => {
                self.emit_guard(1, &[expr]);
                let src = self.compile_operand(expr);
                let key = self.key_idx(key);
                self.code.push(Insn::StoreWrite { key, src });
            }
        }
    }

    /// Returns the guard-only lowering of a block, if the block reduces to
    /// pure fuel accounting: every statement a dead store. Used to fold
    /// branches whose arms differ only in values nobody reads.
    fn guards_only(&self, body: &[CStmt]) -> Option<Vec<Insn>> {
        let mut out = Vec::new();
        for s in body {
            match s {
                CStmt::Assign { slot, expr } if self.reads[*slot as usize] == 0 => {
                    if let Some(g) = guard_insn(1, &[expr]) {
                        out.push(g);
                    }
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// Lowers a condition to a falsy-branch, fusing `Eq`/`Ne`/`Lt`/`Gt`
    /// comparisons into [`Insn::BranchCmpFalse`]. Returns the placeholder
    /// index for the caller to patch.
    fn compile_branch_false(&mut self, cond: &CExpr) -> usize {
        match cond {
            CExpr::BinOp {
                op: op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt),
                lhs,
                rhs,
            } => {
                let lhs = self.compile_operand(lhs);
                let rhs = self.compile_operand(rhs);
                let at = self.code.len();
                self.code.push(Insn::BranchCmpFalse {
                    op: *op,
                    lhs,
                    rhs,
                    target: u32::MAX,
                });
                at
            }
            other => {
                let cond = self.compile_operand(other);
                let at = self.code.len();
                self.code.push(Insn::BranchFalse {
                    cond,
                    target: u32::MAX,
                });
                at
            }
        }
    }

    /// Compiles an expression to an operand, emitting compute instructions
    /// for non-trivial nodes. Temporaries released by sub-expressions are
    /// reused for the result register.
    fn compile_operand(&mut self, e: &CExpr) -> Operand {
        match e {
            CExpr::Int(i) => Operand::Const(self.const_idx(Value::untainted(Data::Int(*i)))),
            CExpr::Str(s) => Operand::Const(self.const_idx(Value::untainted(Data::Str(s.clone())))),
            CExpr::Bool(b) => Operand::Const(self.const_idx(Value::untainted(Data::Bool(*b)))),
            // Last-read promotion: the sole read of a slot, outside any
            // loop, executes at most once per frame — lower it as a
            // consuming register read so the value moves instead of
            // cloning. Definedness is still enforced by the statement's
            // guard, which is keyed on the expression, not the operand.
            CExpr::Var(slot) if self.loop_depth == 0 && self.reads[*slot as usize] == 1 => {
                Operand::Reg(*slot)
            }
            CExpr::Var(slot) => Operand::Slot(*slot),
            CExpr::Source { kind, name } => Operand::Source(self.source_idx(*kind, name)),
            complex => {
                let mark = self.next;
                let parts = self.compile_complex_parts(complex);
                self.next = mark;
                let dst = self.alloc();
                self.emit_complex(dst, complex, parts);
                Operand::Reg(dst)
            }
        }
    }

    /// Compiles an expression directly into a destination register
    /// (assignment lowering: no trailing `Copy` for complex right-hand
    /// sides). Reading the destination as a part operand is safe because
    /// every instruction materializes its inputs before writing `dst`.
    fn compile_into(&mut self, dst: u32, e: &CExpr) {
        match e {
            CExpr::Int(_)
            | CExpr::Str(_)
            | CExpr::Bool(_)
            | CExpr::Var(_)
            | CExpr::Source { .. } => {
                let src = self.compile_operand(e);
                self.code.push(Insn::Copy { dst, src });
            }
            CExpr::Concat(..) => {
                let mut leaves = Vec::new();
                flatten_concat(e, &mut leaves);
                // `acc = acc + …` accumulator chains append into the
                // destination's own buffer when nothing else reads it.
                let is_dst = |l: &&CExpr| matches!(l, CExpr::Var(s) if *s == dst);
                let append = is_dst(&leaves[0]) && !leaves[1..].iter().any(is_dst);
                if append {
                    leaves.remove(0);
                }
                let mark = self.next;
                let parts: Vec<Operand> = leaves.iter().map(|l| self.compile_operand(l)).collect();
                self.next = mark;
                self.code.push(Insn::Concat {
                    dst,
                    parts: parts.into(),
                    append,
                });
            }
            complex => {
                let mark = self.next;
                let parts = self.compile_complex_parts(complex);
                self.next = mark;
                self.emit_complex(dst, complex, parts);
            }
        }
    }

    /// Compiles the sub-operands of a non-trivial expression (in source
    /// order, so guard pre-order and runtime order agree).
    fn compile_complex_parts(&mut self, e: &CExpr) -> Vec<Operand> {
        match e {
            CExpr::Concat(..) => {
                let mut leaves = Vec::new();
                flatten_concat(e, &mut leaves);
                leaves.iter().map(|l| self.compile_operand(l)).collect()
            }
            CExpr::Sanitize { arg, .. } => vec![self.compile_operand(arg)],
            CExpr::BinOp { lhs, rhs, .. } => {
                vec![self.compile_operand(lhs), self.compile_operand(rhs)]
            }
            CExpr::StoreRead { .. } => Vec::new(),
            trivial => unreachable!("trivial expression compiled as complex: {trivial:?}"),
        }
    }

    fn emit_complex(&mut self, dst: u32, e: &CExpr, mut parts: Vec<Operand>) {
        match e {
            CExpr::Concat(..) => self.code.push(Insn::Concat {
                dst,
                parts: parts.into(),
                append: false,
            }),
            CExpr::Sanitize { kind, .. } => self.code.push(Insn::Sanitize {
                dst,
                kind: *kind,
                src: parts.pop().expect("sanitize has one operand"),
            }),
            CExpr::BinOp { op, .. } => {
                let rhs = parts.pop().expect("binop has two operands");
                let lhs = parts.pop().expect("binop has two operands");
                self.code.push(Insn::Binary {
                    dst,
                    op: *op,
                    lhs,
                    rhs,
                });
            }
            CExpr::StoreRead { key } => {
                let key = self.key_idx(key);
                self.code.push(Insn::StoreRead { dst, key });
            }
            trivial => unreachable!("trivial expression compiled as complex: {trivial:?}"),
        }
    }
}

/// Collects the leaves of a `Concat` tree left to right (a leaf is any
/// non-`Concat` expression). Flattening preserves both the rendered bytes
/// (string concatenation is associative) and the taint-merge order (the
/// pairwise merge dedups against everything kept so far, which is exactly
/// the flat left-to-right merge).
fn flatten_concat<'e>(e: &'e CExpr, leaves: &mut Vec<&'e CExpr>) {
    match e {
        CExpr::Concat(a, b) => {
            flatten_concat(a, leaves);
            flatten_concat(b, leaves);
        }
        leaf => leaves.push(leaf),
    }
}

/// Builds a statement's fuel-guard instruction (`base` statement ticks,
/// then the pre-order tick/check interleaving of `exprs`), or `None` when
/// there is nothing to charge (zero-argument call guards).
fn guard_insn(base: u32, exprs: &[&CExpr]) -> Option<Insn> {
    let mut pre = Vec::new();
    let mut acc = base;
    for e in exprs {
        guard_walk(e, &mut acc, &mut pre);
    }
    if pre.is_empty() && acc == 0 {
        return None;
    }
    Some(Insn::Guard {
        pre: pre.into(),
        tail: acc,
    })
}

/// Marks every slot an expression reads.
fn expr_reads(e: &CExpr, reads: &mut [u32]) {
    match e {
        CExpr::Var(slot) => reads[*slot as usize] = reads[*slot as usize].saturating_add(1),
        CExpr::Concat(a, b) => {
            expr_reads(a, reads);
            expr_reads(b, reads);
        }
        CExpr::Sanitize { arg, .. } => expr_reads(arg, reads),
        CExpr::BinOp { lhs, rhs, .. } => {
            expr_reads(lhs, reads);
            expr_reads(rhs, reads);
        }
        CExpr::Int(_)
        | CExpr::Str(_)
        | CExpr::Bool(_)
        | CExpr::Source { .. }
        | CExpr::StoreRead { .. } => {}
    }
}

/// Collects the function-wide slot read set driving dead-store
/// elimination (writes don't count; a slot only the writer mentions is
/// dead).
fn collect_reads(body: &[CStmt], reads: &mut [u32]) {
    for s in body {
        match s {
            CStmt::Assign { expr, .. } | CStmt::Return(expr) | CStmt::StoreWrite { expr, .. } => {
                expr_reads(expr, reads);
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr_reads(cond, reads);
                collect_reads(then_branch, reads);
                collect_reads(else_branch, reads);
            }
            CStmt::While { cond, body } => {
                expr_reads(cond, reads);
                collect_reads(body, reads);
            }
            CStmt::Sink { arg, .. } => expr_reads(arg, reads),
            CStmt::Call { args, .. } => {
                for a in args {
                    expr_reads(a, reads);
                }
            }
        }
    }
}

/// Matches the in-place counter lowering `slot = slot ± <int>`.
fn counter_arith(slot: u32, expr: &CExpr) -> Option<Insn> {
    let CExpr::BinOp {
        op: op @ (BinOp::Add | BinOp::Sub),
        lhs,
        rhs,
    } = expr
    else {
        return None;
    };
    match (&**lhs, &**rhs) {
        (CExpr::Var(s), CExpr::Int(delta)) if *s == slot => Some(Insn::AddConst {
            slot,
            delta: *delta,
            sub: matches!(op, BinOp::Sub),
        }),
        _ => None,
    }
}

/// Evaluates an expression built purely from literals (taints cannot
/// arise, and `eval_binop` is deterministic) for branch folding.
fn const_value(e: &CExpr) -> Option<Value> {
    match e {
        CExpr::Int(i) => Some(Value::untainted(Data::Int(*i))),
        CExpr::Str(s) => Some(Value::untainted(Data::Str(s.clone()))),
        CExpr::Bool(b) => Some(Value::untainted(Data::Bool(*b))),
        CExpr::BinOp { op, lhs, rhs } => {
            Some(eval_binop(*op, const_value(lhs)?, const_value(rhs)?))
        }
        _ => None,
    }
}

fn const_truthy(e: &CExpr) -> Option<bool> {
    const_value(e).map(|v| v.truthy())
}

/// Matches the generator's bounded counting loop
/// `while (x < <int>) { x = x + <int>; }` for [`Insn::CountLoop`]
/// summarization. The body must be exactly the counter update — any other
/// statement could observe intermediate states or fail mid-loop.
fn count_loop(cond: &CExpr, body: &[CStmt]) -> Option<Insn> {
    let CExpr::BinOp {
        op: BinOp::Lt,
        lhs,
        rhs,
    } = cond
    else {
        return None;
    };
    let (CExpr::Var(s), CExpr::Int(limit)) = (&**lhs, &**rhs) else {
        return None;
    };
    let [CStmt::Assign { slot, expr }] = body else {
        return None;
    };
    if slot != s {
        return None;
    }
    let CExpr::BinOp {
        op: BinOp::Add,
        lhs: blhs,
        rhs: brhs,
    } = expr
    else {
        return None;
    };
    match (&**blhs, &**brhs) {
        (CExpr::Var(bs), CExpr::Int(delta)) if bs == s => Some(Insn::CountLoop {
            slot: *s,
            limit: *limit,
            delta: *delta,
        }),
        _ => None,
    }
}

/// Pre-order tick/check walk used by [`FnCompiler::emit_guard`]: every
/// node costs one tick; a `Var` node additionally requires its slot to be
/// defined immediately after its own tick.
fn guard_walk(e: &CExpr, acc: &mut u32, pre: &mut Vec<GuardCheck>) {
    *acc += 1;
    match e {
        CExpr::Var(slot) => {
            pre.push(GuardCheck {
                ticks: *acc,
                slot: *slot,
            });
            *acc = 0;
        }
        CExpr::Concat(a, b) => {
            guard_walk(a, acc, pre);
            guard_walk(b, acc, pre);
        }
        CExpr::Sanitize { arg, .. } => guard_walk(arg, acc, pre),
        CExpr::BinOp { lhs, rhs, .. } => {
            guard_walk(lhs, acc, pre);
            guard_walk(rhs, acc, pre);
        }
        CExpr::Int(_)
        | CExpr::Str(_)
        | CExpr::Bool(_)
        | CExpr::Source { .. }
        | CExpr::StoreRead { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Runs a session through the bytecode tier (the implementation behind
/// [`Interpreter::run_compiled`]). Frames — including every callee frame
/// on the error path — are returned to the scratch pool.
pub(crate) fn run_vm(
    interp: &Interpreter,
    unit: &CompiledUnit,
    requests: &[Request],
    scratch: &mut InterpScratch,
) -> Result<Vec<SinkObservation>, ExecError> {
    scratch.store.clear();
    let mut observations = Vec::new();
    let mut instructions = 0u64;
    let mut ic_hits = 0u64;
    let mut ic_misses = 0u64;
    let mut failure = None;
    for request in requests {
        let mut env = take_frame(&mut scratch.frames, unit.code[0].n_regs);
        let res = {
            let mut vm = Vm {
                interp,
                request,
                observations: &mut observations,
                store: &mut scratch.store,
                frames: &mut scratch.frames,
                steps: 0,
                executed: 0,
                ic_hits: 0,
                ic_misses: 0,
            };
            let res = vm.exec(unit, 0, &mut env, 0);
            instructions += vm.executed;
            ic_hits += vm.ic_hits;
            ic_misses += vm.ic_misses;
            res
        };
        scratch.frames.push(env);
        if let Err(e) = res {
            failure = Some(e);
            break;
        }
    }
    record_vm_session(instructions, ic_hits, ic_misses);
    match failure {
        Some(e) => Err(e),
        None => Ok(observations),
    }
}

/// A borrowed read of an operand: either an existing [`Value`] or a raw
/// request input (semantically an untainted-*string* view; its taint tag
/// is materialized only where taints matter).
enum View<'a> {
    Val(&'a Value),
    Raw(&'a str),
}

impl View<'_> {
    fn is_str(&self) -> bool {
        match self {
            View::Raw(_) => true,
            View::Val(v) => matches!(v.data, Data::Str(_)),
        }
    }

    fn as_int(&self) -> i64 {
        match self {
            View::Raw(s) => s.trim().parse().unwrap_or(0),
            View::Val(v) => v.as_int(),
        }
    }

    fn str_slice(&self) -> Option<&str> {
        match self {
            View::Raw(s) => Some(s),
            View::Val(v) => match &v.data {
                Data::Str(s) => Some(s),
                Data::Int(_) | Data::Bool(_) => None,
            },
        }
    }

    fn render(&self) -> String {
        match self {
            View::Raw(s) => (*s).to_string(),
            View::Val(v) => v.render(),
        }
    }

    fn truthy(&self) -> bool {
        match self {
            View::Raw(s) => !s.is_empty(),
            View::Val(v) => v.truthy(),
        }
    }
}

/// `Eq` with the reference coercion rule: compare as strings when either
/// side is a string, otherwise numerically.
fn views_eq(a: &View<'_>, b: &View<'_>) -> bool {
    if !(a.is_str() || b.is_str()) {
        return a.as_int() == b.as_int();
    }
    match (a.str_slice(), b.str_slice()) {
        (Some(x), Some(y)) => x == y,
        (Some(x), None) => x == b.render(),
        (None, Some(y)) => a.render() == y,
        (None, None) => a.render() == b.render(),
    }
}

/// Sanitizes a borrowed value (slot or literal-pool operand): string data
/// feeds the sanitizer core without the rendered clone `apply_sanitizer`
/// would make, and taints are cloned only when the sanitizer keeps them.
fn sanitize_ref(kind: SanitizerKind, v: &Value) -> Value {
    match &v.data {
        Data::Str(s) => apply_sanitizer_raw(kind, s, || v.taints.clone()),
        d @ (Data::Int(_) | Data::Bool(_)) => {
            let mut r = String::new();
            push_render(&mut r, d);
            apply_sanitizer_raw(kind, &r, || v.taints.clone())
        }
    }
}

/// Appends a value's rendering without allocating an intermediate string.
fn push_render(out: &mut String, d: &Data) {
    match d {
        Data::Str(s) => out.push_str(s),
        Data::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Data::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Per-request VM state. `env` travels as an explicit parameter (one
/// register file per activation) so recursion borrows cleanly.
struct Vm<'a> {
    interp: &'a Interpreter,
    request: &'a Request,
    observations: &'a mut Vec<SinkObservation>,
    store: &'a mut std::collections::BTreeMap<String, Value>,
    frames: &'a mut Vec<Vec<Option<Value>>>,
    steps: usize,
    executed: u64,
    ic_hits: u64,
    ic_misses: u64,
}

impl Vm<'_> {
    fn view<'v>(&'v self, fcode: &'v FuncCode, env: &'v [Option<Value>], op: Operand) -> View<'v> {
        match op {
            Operand::Const(i) => View::Val(&fcode.consts[i as usize]),
            Operand::Slot(i) | Operand::Reg(i) => {
                View::Val(env[i as usize].as_ref().expect("operand checked by guard"))
            }
            Operand::Source(i) => {
                let (kind, name) = &fcode.sources[i as usize];
                View::Raw(self.request.get(*kind, name))
            }
        }
    }

    /// Produces an owned [`Value`] for an operand: constants and slots
    /// clone, temporaries move, sources build their tagged value.
    fn materialize(&self, fcode: &FuncCode, env: &mut [Option<Value>], op: Operand) -> Value {
        match op {
            Operand::Const(i) => fcode.consts[i as usize].clone(),
            Operand::Slot(i) => env[i as usize]
                .as_ref()
                .expect("operand checked by guard")
                .clone(),
            Operand::Reg(i) => env[i as usize].take().expect("temporary produced upstream"),
            Operand::Source(i) => {
                let (kind, name) = &fcode.sources[i as usize];
                Value {
                    data: Data::Str(self.request.get(*kind, name).to_string()),
                    taints: TaintList::one(TaintTag {
                        kind: *kind,
                        name: name.clone(),
                        sanitized_for: SinkSet::new(),
                    }),
                }
            }
        }
    }

    fn exec_concat(
        &mut self,
        fcode: &FuncCode,
        env: &mut [Option<Value>],
        dst: u32,
        parts: &[Operand],
        append: bool,
    ) {
        // The accumulator (append mode) or a leading temporary donates its
        // buffer and taint set; everything else appends into it.
        let take_base = |v: Value| -> (String, TaintList) {
            let Value { data, taints } = v;
            let s = match data {
                Data::Str(s) => s,
                d => {
                    let mut s = String::new();
                    push_render(&mut s, &d);
                    s
                }
            };
            (s, taints)
        };
        let (mut out, mut taints, rest) = if append {
            let v = env[dst as usize]
                .take()
                .expect("accumulator checked by guard");
            let (s, t) = take_base(v);
            (s, t, parts)
        } else if let Some((&Operand::Reg(i), rest)) = parts.split_first() {
            let v = env[i as usize].take().expect("temporary produced upstream");
            let (s, t) = take_base(v);
            (s, t, rest)
        } else {
            (String::new(), TaintList::None, parts)
        };
        // Size the output once up front (estimates for non-string data;
        // only capacity, never content, depends on them).
        let mut est = 0usize;
        for &p in rest {
            est += match self.view(fcode, env, p) {
                View::Raw(s) => s.len(),
                View::Val(v) => match &v.data {
                    Data::Str(s) => s.len(),
                    Data::Int(_) => 12,
                    Data::Bool(_) => 5,
                },
            };
        }
        out.reserve(est);
        for &p in rest {
            match p {
                Operand::Reg(i) => {
                    let v = env[i as usize].take().expect("temporary produced upstream");
                    push_render(&mut out, &v.data);
                    for t in v.taints {
                        if !taints.contains(&t) {
                            taints.push(t);
                        }
                    }
                }
                Operand::Slot(i) => {
                    let v = env[i as usize].as_ref().expect("operand checked by guard");
                    push_render(&mut out, &v.data);
                    for t in &v.taints {
                        if !taints.contains(t) {
                            taints.push(t.clone());
                        }
                    }
                }
                Operand::Const(i) => {
                    // Literal-pool values carry no taints by construction.
                    push_render(&mut out, &fcode.consts[i as usize].data);
                }
                Operand::Source(i) => {
                    let (kind, name) = &fcode.sources[i as usize];
                    out.push_str(self.request.get(*kind, name));
                    let tag = TaintTag {
                        kind: *kind,
                        name: name.clone(),
                        sanitized_for: SinkSet::new(),
                    };
                    if !taints.contains(&tag) {
                        taints.push(tag);
                    }
                }
            }
        }
        env[dst as usize] = Some(Value {
            data: Data::Str(out),
            taints,
        });
    }

    fn exec_sink(
        &mut self,
        fcode: &FuncCode,
        env: &mut [Option<Value>],
        kind: SinkKind,
        site: SiteId,
        src: Operand,
    ) {
        match src {
            Operand::Reg(i) => {
                // The temporary is consumed here: destructure it so the
                // rendered string and offending names move instead of
                // cloning.
                let v = env[i as usize].take().expect("temporary produced upstream");
                let tainted = v.tainted_for(kind);
                let Value { data, taints } = v;
                let offending = taints
                    .into_iter()
                    .filter(|t| !t.sanitized_for.contains(kind))
                    .map(|t| t.name.to_string())
                    .collect();
                let rendered = match data {
                    Data::Str(s) => s,
                    Data::Int(i) => i.to_string(),
                    Data::Bool(b) => b.to_string(),
                };
                self.observations.push(SinkObservation {
                    site,
                    kind,
                    rendered,
                    tainted,
                    offending_sources: offending,
                });
            }
            Operand::Slot(i) => {
                let v = env[i as usize].as_ref().expect("operand checked by guard");
                self.observe_ref(kind, site, v);
            }
            Operand::Const(i) => {
                let v = &fcode.consts[i as usize];
                self.observe_ref(kind, site, v);
            }
            Operand::Source(i) => {
                // A bare source at a sink: fresh tag, never sanitized.
                let (skind, name) = &fcode.sources[i as usize];
                let raw = self.request.get(*skind, name);
                self.observations.push(SinkObservation {
                    site,
                    kind,
                    rendered: raw.to_string(),
                    tainted: kind.is_taint_sink(),
                    offending_sources: vec![name.to_string()],
                });
            }
        }
    }

    fn observe_ref(&mut self, kind: SinkKind, site: SiteId, v: &Value) {
        let offending = v
            .taints
            .iter()
            .filter(|t| !t.sanitized_for.contains(kind))
            .map(|t| t.name.to_string())
            .collect();
        self.observations.push(SinkObservation {
            site,
            kind,
            rendered: v.render(),
            tainted: v.tainted_for(kind),
            offending_sources: offending,
        });
    }

    fn cmp(
        &self,
        fcode: &FuncCode,
        env: &[Option<Value>],
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    ) -> bool {
        let a = self.view(fcode, env, lhs);
        let b = self.view(fcode, env, rhs);
        match op {
            BinOp::Eq => views_eq(&a, &b),
            BinOp::Ne => !views_eq(&a, &b),
            BinOp::Lt => a.as_int() < b.as_int(),
            BinOp::Gt => a.as_int() > b.as_int(),
            BinOp::Add | BinOp::Sub => {
                unreachable!("arithmetic is never fused into a compare-branch")
            }
        }
    }

    #[allow(clippy::too_many_lines)] // the dispatch loop is one flat match by design
    fn exec(
        &mut self,
        unit: &CompiledUnit,
        fidx: usize,
        env: &mut [Option<Value>],
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        let fcode = &unit.code[fidx];
        let code = &fcode.code[..];
        let mut pc = 0usize;
        while let Some(insn) = code.get(pc) {
            self.executed += 1;
            match insn {
                Insn::Guard { pre, tail } => {
                    for c in pre.iter() {
                        self.steps += c.ticks as usize;
                        if self.steps > self.interp.max_steps {
                            return Err(ExecError::StepLimit);
                        }
                        if env[c.slot as usize].is_none() {
                            return Err(ExecError::UndefinedVariable(
                                unit.functions[fidx].slot_names[c.slot as usize].clone(),
                            ));
                        }
                    }
                    if *tail > 0 {
                        self.steps += *tail as usize;
                        if self.steps > self.interp.max_steps {
                            return Err(ExecError::StepLimit);
                        }
                    }
                }
                Insn::Copy { dst, src } => {
                    let v = self.materialize(fcode, env, *src);
                    env[*dst as usize] = Some(v);
                }
                Insn::Concat { dst, parts, append } => {
                    self.exec_concat(fcode, env, *dst, parts, *append);
                }
                Insn::Sanitize { dst, kind, src } => {
                    let v = match *src {
                        // Source shapes go straight from the raw request
                        // string through the sanitizer core: the tagged
                        // input Value (and for the validating sanitizers,
                        // even its taint vec) is never built.
                        Operand::Source(i) => {
                            let (skind, name) = &fcode.sources[i as usize];
                            let raw = self.request.get(*skind, name);
                            apply_sanitizer_raw(*kind, raw, || {
                                TaintList::one(TaintTag {
                                    kind: *skind,
                                    name: name.clone(),
                                    sanitized_for: SinkSet::new(),
                                })
                            })
                        }
                        Operand::Reg(i) => apply_sanitizer(
                            *kind,
                            env[i as usize].take().expect("temporary produced upstream"),
                        ),
                        Operand::Slot(i) => sanitize_ref(
                            *kind,
                            env[i as usize].as_ref().expect("operand checked by guard"),
                        ),
                        Operand::Const(i) => sanitize_ref(*kind, &fcode.consts[i as usize]),
                    };
                    env[*dst as usize] = Some(v);
                }
                Insn::AddConst { slot, delta, sub } => {
                    let v = env[*slot as usize]
                        .as_mut()
                        .expect("operand checked by guard");
                    let a = v.as_int();
                    v.data = Data::Int(if *sub {
                        a.wrapping_sub(*delta)
                    } else {
                        a.wrapping_add(*delta)
                    });
                    // Taints survive in place: merging with an untainted
                    // literal leaves the left side's tags unchanged.
                }
                Insn::Binary { dst, op, lhs, rhs } => {
                    let a = self.materialize(fcode, env, *lhs);
                    let b = self.materialize(fcode, env, *rhs);
                    env[*dst as usize] = Some(eval_binop(*op, a, b));
                }
                Insn::StoreRead { dst, key } => {
                    let v = self
                        .store
                        .get(&fcode.keys[*key as usize])
                        .cloned()
                        .unwrap_or_else(|| Value::untainted(Data::Str(String::new())));
                    env[*dst as usize] = Some(v);
                }
                Insn::StoreWrite { key, src } => {
                    let v = self.materialize(fcode, env, *src);
                    self.store.insert(fcode.keys[*key as usize].clone(), v);
                }
                Insn::Sink { kind, site, src } => self.exec_sink(fcode, env, *kind, *site, *src),
                Insn::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Insn::BranchFalse { cond, target } => {
                    if !self.view(fcode, env, *cond).truthy() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::BranchCmpFalse {
                    op,
                    lhs,
                    rhs,
                    target,
                } => {
                    if !self.cmp(fcode, env, *op, *lhs, *rhs) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::CountLoop { slot, limit, delta } => {
                    // Condition eval #1 pre-order: BinOp tick, Var tick,
                    // then the only variable check the loop can fail.
                    self.steps += 2;
                    if self.steps > self.interp.max_steps {
                        return Err(ExecError::StepLimit);
                    }
                    let Some(v) = env[*slot as usize].as_mut() else {
                        return Err(ExecError::UndefinedVariable(
                            unit.functions[fidx].slot_names[*slot as usize].clone(),
                        ));
                    };
                    // Replay the oracle's iteration structure on plain
                    // integers: each round evaluates the condition, breaks
                    // on the `max_loop_iters` backstop, then runs the
                    // counter update. `as_int` coercion only matters on
                    // the first round; afterwards the counter is an Int.
                    let mut a = v.as_int();
                    let max_iters = self.interp.max_loop_iters;
                    let mut cond_evals: usize = 1;
                    let mut body_execs: usize = 0;
                    while a < *limit {
                        if body_execs + 1 > max_iters {
                            break;
                        }
                        a = a.wrapping_add(*delta);
                        body_execs += 1;
                        cond_evals += 1;
                    }
                    // Exact oracle tick total: 3 per condition eval
                    // (BinOp, Var, Int — 2 already charged), 4 per body
                    // run (stmt, BinOp, Var, Int).
                    let remaining = cond_evals * 3 - 2 + body_execs * 4;
                    self.steps += remaining;
                    if self.steps > self.interp.max_steps {
                        return Err(ExecError::StepLimit);
                    }
                    if body_execs > 0 {
                        v.data = Data::Int(a);
                    }
                }
                Insn::LoopReset { reg } => {
                    env[*reg as usize] = Some(Value::untainted(Data::Int(0)));
                }
                Insn::LoopBound { reg, exit } => {
                    let iters = 1 + match &env[*reg as usize] {
                        Some(Value {
                            data: Data::Int(i), ..
                        }) => *i,
                        _ => 0,
                    };
                    if usize::try_from(iters).unwrap_or(usize::MAX) > self.interp.max_loop_iters {
                        pc = *exit as usize;
                        continue;
                    }
                    env[*reg as usize] = Some(Value::untainted(Data::Int(iters)));
                }
                Insn::EnterCall => {
                    if depth + 1 > self.interp.max_call_depth {
                        return Err(ExecError::CallDepth);
                    }
                }
                Insn::CallUndefined { name } => {
                    if depth + 1 > self.interp.max_call_depth {
                        return Err(ExecError::CallDepth);
                    }
                    self.ic_misses += 1;
                    return Err(ExecError::UndefinedFunction(name.to_string()));
                }
                Insn::CallArityErr {
                    func,
                    expected,
                    actual,
                } => {
                    if depth + 1 > self.interp.max_call_depth {
                        return Err(ExecError::CallDepth);
                    }
                    self.ic_misses += 1;
                    return Err(ExecError::ArityMismatch {
                        func: func.to_string(),
                        expected: *expected as usize,
                        actual: *actual as usize,
                    });
                }
                Insn::Call { callee, args, dst } => {
                    self.ic_hits += 1;
                    let cidx = *callee as usize;
                    let mut frame = take_frame(self.frames, unit.code[cidx].n_regs);
                    for (i, a) in args.iter().enumerate() {
                        frame[i] = Some(self.materialize(fcode, env, *a));
                    }
                    let res = self.exec(unit, cidx, &mut frame, depth + 1);
                    // The frame returns to the pool on success *and* error
                    // (the slot walker leaked it on the error path).
                    self.frames.push(frame);
                    let ret = res?;
                    if let Some(dst) = dst {
                        env[*dst as usize] =
                            Some(ret.unwrap_or_else(|| Value::untainted(Data::Str(String::new()))));
                    }
                }
                Insn::Return { src } => {
                    let v = self.materialize(fcode, env, *src);
                    return Ok(Some(v));
                }
            }
            pc += 1;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Function, Stmt, Unit};

    fn unit(body: Vec<Stmt>, helpers: Vec<Function>) -> Unit {
        Unit {
            id: 0,
            handler: Function::new("handler", vec![], body),
            helpers,
        }
    }

    fn compile(u: &Unit) -> CompiledUnit {
        CompiledUnit::compile(u)
    }

    fn param(name: &str) -> Expr {
        Expr::Source {
            kind: SourceKind::HttpParam,
            name: name.into(),
        }
    }

    #[test]
    fn concat_trees_flatten_into_one_superinstruction() {
        // sink(("SELECT " + id) + " FROM t"): the whole tree must lower to
        // a single n-ary Concat with the parts in source order.
        let u = unit(
            vec![Stmt::Sink {
                kind: SinkKind::SqlQuery,
                arg: Expr::concat(
                    Expr::concat(Expr::str("SELECT "), param("id")),
                    Expr::str(" FROM t"),
                ),
                site: SiteId { unit: 0, sink: 0 },
            }],
            vec![],
        );
        let c = compile(&u);
        let concats: Vec<_> = c.code[0]
            .code
            .iter()
            .filter_map(|i| match i {
                Insn::Concat { parts, .. } => Some(parts.len()),
                _ => None,
            })
            .collect();
        assert_eq!(concats, vec![3], "one 3-part superinstruction expected");
    }

    #[test]
    fn comparison_gates_fuse_into_branch_cmp() {
        // if (mode == "debug") { sink }: the gate must not allocate a
        // boolean Value — it lowers to a fused compare-branch over views.
        let u = unit(
            vec![Stmt::If {
                cond: Expr::BinOp {
                    op: BinOp::Eq,
                    lhs: Box::new(param("mode")),
                    rhs: Box::new(Expr::str("debug")),
                },
                then_branch: vec![Stmt::Sink {
                    kind: SinkKind::HtmlOutput,
                    arg: Expr::str("debug mode"),
                    site: SiteId { unit: 0, sink: 0 },
                }],
                else_branch: vec![],
            }],
            vec![],
        );
        let c = compile(&u);
        assert!(
            c.code[0]
                .code
                .iter()
                .any(|i| matches!(i, Insn::BranchCmpFalse { op: BinOp::Eq, .. })),
            "expected a fused compare-branch, got {:?}",
            c.code[0].code
        );
        assert!(
            !c.code[0]
                .code
                .iter()
                .any(|i| matches!(i, Insn::Binary { .. })),
            "gate comparison must not fall back to a generic Binary"
        );
    }

    #[test]
    fn unresolved_and_wrong_arity_calls_lower_to_deferred_stubs() {
        let helper = Function::new("h", vec!["a".into()], vec![]);
        let u = unit(
            vec![
                Stmt::If {
                    cond: Expr::Bool(false),
                    then_branch: vec![
                        Stmt::Call {
                            var: None,
                            func: "ghost".into(),
                            args: vec![],
                        },
                        Stmt::Call {
                            var: None,
                            func: "h".into(),
                            args: vec![], // arity 0 vs declared 1
                        },
                    ],
                    else_branch: vec![],
                },
                Stmt::Call {
                    var: None,
                    func: "h".into(),
                    args: vec![Expr::Int(1)],
                },
            ],
            vec![helper],
        );
        let c = compile(&u);
        let code = &c.code[0].code;
        assert!(code.iter().any(|i| matches!(i, Insn::CallUndefined { .. })));
        assert!(code.iter().any(|i| matches!(i, Insn::CallArityErr { .. })));
        assert!(code.iter().any(|i| matches!(i, Insn::Call { .. })));
        // The dead stubs must not fail at compile or run time.
        let interp = Interpreter::default();
        assert!(interp.run(&u, &Request::new()).is_ok());
    }

    #[test]
    fn guard_interleaves_ticks_and_var_checks_in_pre_order() {
        // x = (a + 1) + b — pre-order: BinOp(Add) tick, BinOp tick, Var(a)
        // tick+check, Int tick, Var(b) tick+check. Statement tick folds
        // into the first run.
        let u = unit(
            vec![
                Stmt::Let {
                    var: "a".into(),
                    expr: Expr::Int(1),
                },
                Stmt::Let {
                    var: "b".into(),
                    expr: Expr::Int(2),
                },
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::BinOp {
                        op: BinOp::Add,
                        lhs: Box::new(Expr::BinOp {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::var("a")),
                            rhs: Box::new(Expr::Int(1)),
                        }),
                        rhs: Box::new(Expr::var("b")),
                    },
                },
            ],
            vec![],
        );
        let c = compile(&u);
        let guards: Vec<_> = c.code[0]
            .code
            .iter()
            .filter_map(|i| match i {
                Insn::Guard { pre, tail } => Some((pre.to_vec(), *tail)),
                _ => None,
            })
            .collect();
        // Third statement: 1 (stmt) + 2 (two Add nodes) + 1 (Var a) = 4
        // ticks to the first check, then 1 (Int) + 1 (Var b) = 2 to the
        // second, no tail.
        assert_eq!(
            guards[2],
            (
                vec![
                    GuardCheck { ticks: 4, slot: 0 },
                    GuardCheck { ticks: 2, slot: 1 }
                ],
                0
            )
        );
    }

    #[test]
    fn loop_counters_nest_without_colliding_with_temps() {
        // Two nested bounded loops with concat accumulation: counters pin
        // below the temp floor, so iteration state survives body temps.
        let u = unit(
            vec![
                Stmt::Let {
                    var: "i".into(),
                    expr: Expr::Int(0),
                },
                Stmt::Let {
                    var: "acc".into(),
                    expr: Expr::str(""),
                },
                Stmt::While {
                    cond: Expr::BinOp {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::var("i")),
                        rhs: Box::new(Expr::Int(3)),
                    },
                    body: vec![
                        Stmt::Let {
                            var: "j".into(),
                            expr: Expr::Int(0),
                        },
                        Stmt::While {
                            cond: Expr::BinOp {
                                op: BinOp::Lt,
                                lhs: Box::new(Expr::var("j")),
                                rhs: Box::new(Expr::Int(2)),
                            },
                            body: vec![
                                Stmt::Assign {
                                    var: "acc".into(),
                                    expr: Expr::concat(
                                        Expr::concat(Expr::var("acc"), Expr::str("x")),
                                        param("q"),
                                    ),
                                },
                                Stmt::Assign {
                                    var: "j".into(),
                                    expr: Expr::BinOp {
                                        op: BinOp::Add,
                                        lhs: Box::new(Expr::var("j")),
                                        rhs: Box::new(Expr::Int(1)),
                                    },
                                },
                            ],
                        },
                        Stmt::Assign {
                            var: "i".into(),
                            expr: Expr::BinOp {
                                op: BinOp::Add,
                                lhs: Box::new(Expr::var("i")),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        },
                    ],
                },
                Stmt::Sink {
                    kind: SinkKind::HtmlOutput,
                    arg: Expr::var("acc"),
                    site: SiteId { unit: 0, sink: 0 },
                },
            ],
            vec![],
        );
        let interp = Interpreter::default();
        let req = Request::new().with_param("q", "<p>");
        let vm = interp.run(&u, &req).expect("vm run");
        let oracle = interp
            .run_session_treewalk(&u, std::slice::from_ref(&req))
            .expect("oracle run");
        assert_eq!(vm, oracle);
        assert_eq!(vm[0].rendered, "x<p>".repeat(6));
    }

    #[test]
    fn vm_telemetry_counters_advance() {
        let reg = vdbench_telemetry::registry::global();
        let insns = reg.counter("interp.vm.instructions");
        let hits = reg.counter("interp.vm.inline_cache.hits");
        let before_insns = insns.get();
        let before_hits = hits.get();
        let helper = Function::new(
            "fmt",
            vec!["x".into()],
            vec![Stmt::Return(Expr::concat(Expr::str("v="), Expr::var("x")))],
        );
        let u = unit(
            vec![Stmt::Call {
                var: Some("out".into()),
                func: "fmt".into(),
                args: vec![param("q")],
            }],
            vec![helper],
        );
        let interp = Interpreter::default();
        interp
            .run(&u, &Request::new().with_param("q", "1"))
            .expect("run");
        assert!(insns.get() > before_insns, "instruction counter advances");
        assert!(hits.get() > before_hits, "resolved call counts as IC hit");
    }
}
