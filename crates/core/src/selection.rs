//! Per-scenario metric selection: analytical and MCDA-validated.
//!
//! The selector scores every candidate metric on the assessed attributes,
//! weights the attributes by the scenario's requirement profile, and
//! produces the **analytical ranking**. For validation it elicits a
//! simulated expert panel, aggregates the judgments into AHP criteria
//! weights, runs the hierarchy in ratings mode over the same attribute
//! scores, and reports the agreement between the two rankings.

use crate::attributes::{cost_alignment, AssessmentConfig, AttributeAssessment, MetricAttribute};
use crate::cache::cached_assessment;
use crate::error::{CoreError, Result};
use crate::scenario::{Scenario, ScenarioId};
use serde::{Deserialize, Serialize};
use vdbench_experts::Panel;
use vdbench_mcda::ahp::Ahp;
use vdbench_mcda::decision::Direction;
use vdbench_mcda::ranking::ranking_from_scores;
use vdbench_metrics::metric::Metric;
use vdbench_metrics::MetricId;
use vdbench_stats::correlation::kendall_tau;

/// The default candidate short-list used in the scenario studies: the
/// traditional metrics plus the paper's "seldom used" alternatives.
pub fn default_candidates() -> Vec<Box<dyn Metric>> {
    use vdbench_metrics::basic::{Accuracy, Precision, Recall, Specificity};
    use vdbench_metrics::composite::{FMeasure, Informedness, Markedness, Mcc};
    use vdbench_metrics::cost::ExpectedCost;
    vec![
        Box::new(Precision),
        Box::new(Recall),
        Box::new(Specificity),
        Box::new(Accuracy),
        Box::new(FMeasure::f1()),
        Box::new(FMeasure::f2()),
        Box::new(Informedness),
        Box::new(Markedness),
        Box::new(Mcc),
        Box::new(ExpectedCost::fn_heavy()),
        Box::new(ExpectedCost::fp_heavy()),
    ]
}

/// The outcome of selecting a metric for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// The scenario analyzed.
    pub scenario: ScenarioId,
    /// Candidate metric ids in candidate order.
    pub candidates: Vec<MetricId>,
    /// Analytical (requirement-weighted) scores per candidate.
    pub analytical_scores: Vec<f64>,
    /// Analytical ranking (candidate indices, best first).
    pub analytical_ranking: Vec<usize>,
    /// MCDA (AHP + experts) global priorities per candidate.
    pub mcda_scores: Vec<f64>,
    /// MCDA ranking (candidate indices, best first).
    pub mcda_ranking: Vec<usize>,
    /// AHP criteria weights recovered from the expert panel.
    pub criteria_weights: Vec<f64>,
    /// Consistency ratio of the aggregated expert judgments (`None` for
    /// fewer than three criteria).
    pub consistency_ratio: Option<f64>,
    /// Kendall τ between the analytical and MCDA rankings.
    pub agreement_tau: f64,
    /// Whether both rankings pick the same winner.
    pub top1_agree: bool,
}

impl SelectionOutcome {
    /// The analytically selected metric.
    pub fn analytical_best(&self) -> MetricId {
        self.candidates[self.analytical_ranking[0]]
    }

    /// The MCDA-selected metric.
    pub fn mcda_best(&self) -> MetricId {
        self.candidates[self.mcda_ranking[0]]
    }

    /// Overlap size of the two rankings' top-`k` sets.
    pub fn top_k_overlap(&self, k: usize) -> usize {
        let a: std::collections::BTreeSet<_> = self.analytical_ranking.iter().take(k).collect();
        self.mcda_ranking
            .iter()
            .take(k)
            .filter(|i| a.contains(i))
            .count()
    }
}

/// The metric-selection engine: candidates + their assessed attributes.
pub struct MetricSelector {
    candidates: Vec<Box<dyn Metric>>,
    assessments: std::sync::Arc<Vec<AttributeAssessment>>,
    cfg: AssessmentConfig,
}

impl MetricSelector {
    /// Builds a selector, running the (generic) attribute assessment once.
    /// The assessment is served from the process-wide campaign cache
    /// ([`crate::cache`]), so repeated selectors over the same catalog and
    /// configuration share one computation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty candidate list.
    pub fn new(candidates: Vec<Box<dyn Metric>>, cfg: AssessmentConfig) -> Result<Self> {
        if candidates.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "no candidate metrics".into(),
            });
        }
        let assessments = cached_assessment(&candidates, &cfg);
        Ok(MetricSelector {
            candidates,
            assessments,
            cfg,
        })
    }

    /// The candidate metrics.
    pub fn candidates(&self) -> &[Box<dyn Metric>] {
        &self.candidates
    }

    /// The generic attribute assessments (no cost alignment).
    pub fn assessments(&self) -> &[AttributeAssessment] {
        &self.assessments
    }

    /// Full ratings matrix for a scenario: per candidate, the scores of
    /// every attribute in [`MetricAttribute::all`] order, with the
    /// scenario-specific cost alignment filled in.
    pub fn ratings_for(&self, scenario: &Scenario) -> Vec<Vec<f64>> {
        self.candidates
            .iter()
            .zip(self.assessments.iter())
            .map(|(metric, sheet)| {
                MetricAttribute::all()
                    .iter()
                    .map(|attr| match attr {
                        MetricAttribute::CostAlignment => cost_alignment(
                            metric.as_ref(),
                            scenario.fp_cost,
                            scenario.fn_cost,
                            scenario.typical_prevalence,
                            &self.cfg,
                        ),
                        other => sheet.score(*other),
                    })
                    .collect()
            })
            .collect()
    }

    /// Analytical selection: requirement-weighted sum of attribute scores.
    pub fn analytical(&self, scenario: &Scenario) -> (Vec<f64>, Vec<usize>) {
        let ratings = self.ratings_for(scenario);
        let weights = scenario.weight_vector();
        let total: f64 = weights.iter().sum();
        let scores: Vec<f64> = ratings
            .iter()
            .map(|row| row.iter().zip(&weights).map(|(r, w)| r * w).sum::<f64>() / total)
            .collect();
        let ranking = ranking_from_scores(&scores, true);
        (scores, ranking)
    }

    /// Full selection for one scenario: analytical ranking + MCDA
    /// validation against the given expert panel.
    ///
    /// The panel must judge [`MetricAttribute::all`]`.len()` criteria; its
    /// aggregated judgments become the AHP criteria matrix, and the
    /// assessed attribute scores are the ratings-mode alternatives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the panel's criteria
    /// count does not match, or propagates MCDA errors.
    pub fn select(&self, scenario: &Scenario, panel: &Panel) -> Result<SelectionOutcome> {
        let n_criteria = MetricAttribute::all().len();
        if panel.criteria_count() != n_criteria {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "panel judges {} criteria, scenario needs {}",
                    panel.criteria_count(),
                    n_criteria
                ),
            });
        }
        let (analytical_scores, analytical_ranking) = self.analytical(scenario);
        let ratings = self.ratings_for(scenario);

        let consensus = panel.aggregate()?;
        let criteria_names: Vec<String> = MetricAttribute::all()
            .iter()
            .map(|a| a.label().to_string())
            .collect();
        let alt_names: Vec<String> = self
            .candidates
            .iter()
            .map(|m| m.abbrev().to_string())
            .collect();
        let ahp = Ahp::with_ratings(
            criteria_names,
            consensus,
            alt_names,
            ratings,
            vec![Direction::Benefit; n_criteria],
        )?;
        let result = ahp.solve()?;

        let analytical_pos: Vec<f64> =
            vdbench_mcda::ranking::positions_from_ranking(&analytical_ranking)
                .iter()
                .map(|&p| p as f64)
                .collect();
        let mcda_pos: Vec<f64> = vdbench_mcda::ranking::positions_from_ranking(&result.ranking)
            .iter()
            .map(|&p| p as f64)
            .collect();
        let agreement_tau = kendall_tau(&analytical_pos, &mcda_pos).unwrap_or(f64::NAN);

        Ok(SelectionOutcome {
            scenario: scenario.id,
            candidates: self.candidates.iter().map(|m| m.id()).collect(),
            top1_agree: analytical_ranking[0] == result.ranking[0],
            analytical_scores,
            analytical_ranking,
            mcda_scores: result.scores.clone(),
            mcda_ranking: result.ranking.clone(),
            criteria_weights: result.criteria_weights.clone(),
            consistency_ratio: result.criteria_consistency.cr,
            agreement_tau,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::standard_scenarios;

    fn quick_cfg() -> AssessmentConfig {
        AssessmentConfig {
            workload_size: 200,
            reference_prevalence: 0.2,
            tool_sample: 40,
            replicates: 100,
            seed: 77,
        }
    }

    fn selector() -> MetricSelector {
        MetricSelector::new(default_candidates(), quick_cfg()).unwrap()
    }

    fn low_noise_panel(scenario: &Scenario) -> Panel {
        Panel::homogeneous(&scenario.weight_vector(), 7, 0.1, 99)
    }

    #[test]
    fn empty_candidates_rejected() {
        assert!(MetricSelector::new(vec![], quick_cfg()).is_err());
    }

    #[test]
    fn ratings_shape() {
        let s = selector();
        let scenario = Scenario::standard(ScenarioId::S1Audit);
        let ratings = s.ratings_for(&scenario);
        assert_eq!(ratings.len(), s.candidates().len());
        for row in &ratings {
            assert_eq!(row.len(), MetricAttribute::all().len());
            assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn scenario_winners_follow_the_paper_narrative() {
        let s = selector();
        // S1 (false positives costly): a precision-flavoured metric wins.
        let (_, r1) = s.analytical(&Scenario::standard(ScenarioId::S1Audit));
        let s1_best = s.candidates()[r1[0]].id();
        assert!(
            matches!(
                s1_best,
                MetricId::Precision | MetricId::CostFpHeavy | MetricId::FHalf | MetricId::F1
            ),
            "S1 picked {s1_best:?}"
        );
        // S2 (misses costly): a recall-flavoured metric wins.
        let (_, r2) = s.analytical(&Scenario::standard(ScenarioId::S2Gate));
        let s2_best = s.candidates()[r2[0]].id();
        assert!(
            matches!(
                s2_best,
                MetricId::Recall | MetricId::CostFnHeavy | MetricId::F2
            ),
            "S2 picked {s2_best:?}"
        );
        // S3 (cross-workload comparison): a chance-corrected,
        // prevalence-robust metric wins — the "seldom used" family.
        let (_, r3) = s.analytical(&Scenario::standard(ScenarioId::S3Procurement));
        let s3_best = s.candidates()[r3[0]].id();
        assert!(
            matches!(s3_best, MetricId::Informedness | MetricId::Mcc),
            "S3 picked {s3_best:?}"
        );
        // Accuracy must not win anywhere.
        for scenario in standard_scenarios() {
            let (_, r) = s.analytical(&scenario);
            assert_ne!(
                s.candidates()[r[0]].id(),
                MetricId::Accuracy,
                "accuracy won {}",
                scenario.id
            );
        }
    }

    #[test]
    fn low_noise_mcda_validates_analytical_selection() {
        let s = selector();
        for scenario in standard_scenarios() {
            let panel = low_noise_panel(&scenario);
            let outcome = s.select(&scenario, &panel).unwrap();
            assert!(
                outcome.agreement_tau > 0.5,
                "{}: tau {}",
                scenario.id,
                outcome.agreement_tau
            );
            assert!(
                outcome.top_k_overlap(3) >= 2,
                "{}: top-3 overlap {}",
                scenario.id,
                outcome.top_k_overlap(3)
            );
            if let Some(cr) = outcome.consistency_ratio {
                assert!(cr < 0.2, "{}: CR {cr}", scenario.id);
            }
        }
    }

    #[test]
    fn panel_size_mismatch_rejected() {
        let s = selector();
        let scenario = Scenario::standard(ScenarioId::S1Audit);
        let bad_panel = Panel::homogeneous(&[0.5, 0.5], 3, 0.1, 1);
        assert!(s.select(&scenario, &bad_panel).is_err());
    }

    #[test]
    fn outcome_helpers() {
        let s = selector();
        let scenario = Scenario::standard(ScenarioId::S2Gate);
        let outcome = s.select(&scenario, &low_noise_panel(&scenario)).unwrap();
        assert_eq!(
            outcome.analytical_best(),
            outcome.candidates[outcome.analytical_ranking[0]]
        );
        assert_eq!(
            outcome.mcda_best(),
            outcome.candidates[outcome.mcda_ranking[0]]
        );
        assert!(outcome.top_k_overlap(outcome.candidates.len()) == outcome.candidates.len());
    }
}
