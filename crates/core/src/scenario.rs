//! Concrete usage scenarios (stage 2 of the paper).
//!
//! "The effectiveness of vulnerability detection tools depends on the
//! concrete use scenario" — these four scenarios operationalize that claim.
//! Each scenario fixes a cost model (how expensive each error type is), a
//! typical workload prevalence, and a *requirement profile*: how much the
//! scenario cares about each characteristic of a good metric. The
//! requirement profile doubles as the latent preference vector handed to
//! simulated expert panels in the validation stage.

use crate::attributes::MetricAttribute;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The four standard scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScenarioId {
    /// S1 — security audit with expert review of every report.
    S1Audit,
    /// S2 — business-critical deployment gate.
    S2Gate,
    /// S3 — tool comparison / procurement across heterogeneous workloads.
    S3Procurement,
    /// S4 — continuous-integration filter on low-prevalence code streams.
    S4Triage,
}

impl ScenarioId {
    /// All scenarios in presentation order.
    pub fn all() -> &'static [ScenarioId] {
        &[
            ScenarioId::S1Audit,
            ScenarioId::S2Gate,
            ScenarioId::S3Procurement,
            ScenarioId::S4Triage,
        ]
    }

    /// Short label ("S1" … "S4").
    pub fn label(self) -> &'static str {
        match self {
            ScenarioId::S1Audit => "S1",
            ScenarioId::S2Gate => "S2",
            ScenarioId::S3Procurement => "S3",
            ScenarioId::S4Triage => "S4",
        }
    }
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully specified usage scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Identifier.
    pub id: ScenarioId,
    /// Human-readable name.
    pub name: String,
    /// One-paragraph description of the use case.
    pub description: String,
    /// Cost of triaging one false positive (relative units).
    pub fp_cost: f64,
    /// Cost of one missed vulnerability (relative units).
    pub fn_cost: f64,
    /// Typical fraction of vulnerable units in this scenario's workloads.
    pub typical_prevalence: f64,
    /// Default workload size (benchmark cases) for the case studies.
    pub workload_units: usize,
    /// Requirement profile: relative importance of each good-metric
    /// characteristic in this scenario (positive weights, not necessarily
    /// normalized).
    pub attribute_weights: BTreeMap<MetricAttribute, f64>,
}

impl Scenario {
    /// The cost ratio `fn_cost / fp_cost` — how many false alarms one miss
    /// is worth.
    pub fn cost_ratio(&self) -> f64 {
        self.fn_cost / self.fp_cost
    }

    /// Requirement weights as parallel vectors in [`MetricAttribute::all`]
    /// order (zeros for absent attributes).
    pub fn weight_vector(&self) -> Vec<f64> {
        MetricAttribute::all()
            .iter()
            .map(|a| self.attribute_weights.get(a).copied().unwrap_or(0.0))
            .collect()
    }

    /// Looks a standard scenario up by id.
    pub fn standard(id: ScenarioId) -> Scenario {
        standard_scenarios()
            .into_iter()
            .find(|s| s.id == id)
            .expect("all ids covered")
    }

    /// Builds an ad-hoc scenario from a user's cost model and workload
    /// prevalence, with a neutral requirement profile (cost alignment and
    /// validity dominate, the remaining attributes get moderate weight).
    /// This is the entry point behind `vdbench recommend`: describe your
    /// situation numerically and let the selection machinery pick the
    /// metric.
    ///
    /// The closest standard scenario id is attached for reporting (by cost
    /// ratio and prevalence distance); the selection itself uses only the
    /// supplied numbers.
    ///
    /// # Panics
    ///
    /// Panics unless both costs are positive and finite and `prevalence`
    /// lies in `(0, 1)`.
    pub fn custom(fp_cost: f64, fn_cost: f64, prevalence: f64) -> Scenario {
        assert!(
            fp_cost.is_finite() && fp_cost > 0.0 && fn_cost.is_finite() && fn_cost > 0.0,
            "costs must be positive and finite"
        );
        assert!(
            prevalence > 0.0 && prevalence < 1.0,
            "prevalence must be in (0, 1)"
        );
        use MetricAttribute as A;
        // Nearest standard scenario in (log cost ratio, log prevalence)
        // space, for reporting only.
        let target = ((fn_cost / fp_cost).ln(), prevalence.ln());
        let nearest = standard_scenarios()
            .into_iter()
            .min_by(|a, b| {
                let d = |s: &Scenario| -> f64 {
                    let dr = s.cost_ratio().ln() - target.0;
                    let dp = s.typical_prevalence.ln() - target.1;
                    dr * dr + dp * dp
                };
                d(a).total_cmp(&d(b))
            })
            .expect("standard scenarios exist");
        Scenario {
            id: nearest.id,
            name: "Custom scenario".into(),
            description: format!(
                "User-described scenario: c(FP) = {fp_cost}, c(FN) = {fn_cost}, \
                 prevalence ≈ {:.1}% (closest standard profile: {}).",
                prevalence * 100.0,
                nearest.id
            ),
            fp_cost,
            fn_cost,
            typical_prevalence: prevalence,
            workload_units: 600,
            attribute_weights: weights(&[
                (A::CostAlignment, 8.0),
                (A::Validity, 6.0),
                (A::ChanceCorrection, 3.0),
                (A::Simplicity, 3.0),
                (A::Stability, 3.0),
                (A::Definedness, 2.0),
                (A::DiscriminativePower, 2.0),
                (A::PrevalenceInvariance, 2.0),
            ]),
        }
    }
}

fn weights(entries: &[(MetricAttribute, f64)]) -> BTreeMap<MetricAttribute, f64> {
    entries.iter().copied().collect()
}

/// The four standard scenarios with their cost models and requirement
/// profiles.
///
/// The profiles encode the scenario analysis of the paper: every scenario
/// values validity and cost alignment, but they differ in how much they
/// care about prevalence invariance (S3 compares across workloads),
/// simplicity (S1's reports go to human reviewers and managers), chance
/// correction (S4's prevalence is so low that uncorrected metrics
/// degenerate) and discriminative power (S3 must separate close
/// competitors).
pub fn standard_scenarios() -> Vec<Scenario> {
    use MetricAttribute as A;
    vec![
        Scenario {
            id: ScenarioId::S1Audit,
            name: "Security audit with expert review".into(),
            description: "A security team reviews every tool report by hand. Review \
                          capacity is the scarce resource, so false positives burn real \
                          budget; residual risk is tolerated and handled by later process \
                          stages. Metric consumers are human reviewers and managers."
                .into(),
            fp_cost: 5.0,
            fn_cost: 1.0,
            typical_prevalence: 0.25,
            workload_units: 600,
            attribute_weights: weights(&[
                (A::CostAlignment, 9.0),
                (A::Validity, 6.0),
                (A::Simplicity, 5.0),
                // Reviewers compare tool scores against the cost of random
                // triage, so a metric that flatters chance-level reporting
                // (accuracy at moderate prevalence) misleads the audit.
                (A::ChanceCorrection, 4.0),
                (A::Stability, 3.0),
                (A::Definedness, 2.0),
                (A::DiscriminativePower, 2.0),
                (A::PrevalenceInvariance, 1.0),
            ]),
        },
        Scenario {
            id: ScenarioId::S2Gate,
            name: "Business-critical deployment gate".into(),
            description: "The tool gates deployment of a business-critical service: a \
                          vulnerability that slips through is catastrophically expensive, \
                          while a false alarm merely delays a release. The benchmark must \
                          reward tools that miss as little as possible."
                .into(),
            fp_cost: 1.0,
            fn_cost: 20.0,
            typical_prevalence: 0.15,
            workload_units: 600,
            attribute_weights: weights(&[
                (A::CostAlignment, 9.0),
                (A::Validity, 6.0),
                (A::Simplicity, 4.0),
                (A::Stability, 3.0),
                (A::Definedness, 2.0),
                (A::DiscriminativePower, 2.0),
                (A::PrevalenceInvariance, 1.0),
                (A::ChanceCorrection, 1.0),
            ]),
        },
        Scenario {
            id: ScenarioId::S3Procurement,
            name: "Tool comparison and procurement".into(),
            description: "An organization ranks candidate tools using benchmark results \
                          gathered on workloads with very different vulnerability \
                          densities. The metric must order tools consistently regardless \
                          of workload mix and must not reward chance-level behaviour."
                .into(),
            fp_cost: 1.0,
            fn_cost: 3.0,
            typical_prevalence: 0.3,
            workload_units: 600,
            attribute_weights: weights(&[
                (A::PrevalenceInvariance, 9.0),
                (A::ChanceCorrection, 7.0),
                (A::DiscriminativePower, 6.0),
                (A::Validity, 6.0),
                (A::CostAlignment, 3.0),
                (A::Stability, 3.0),
                (A::Definedness, 2.0),
                (A::Simplicity, 1.0),
            ]),
        },
        Scenario {
            id: ScenarioId::S4Triage,
            name: "Continuous-integration filter".into(),
            description: "The tool screens a high-volume stream of changes where true \
                          vulnerabilities are rare (≈2%). Plain accuracy is degenerate \
                          here (saying 'clean' scores 98%), so the metric must stay \
                          meaningful at extreme class imbalance and respect the asymmetric \
                          cost of the two error types."
                .into(),
            fp_cost: 2.0,
            fn_cost: 8.0,
            typical_prevalence: 0.02,
            workload_units: 1500,
            attribute_weights: weights(&[
                (A::CostAlignment, 8.0),
                (A::ChanceCorrection, 7.0),
                (A::Validity, 6.0),
                (A::PrevalenceInvariance, 4.0),
                (A::Definedness, 4.0),
                (A::Stability, 3.0),
                (A::DiscriminativePower, 3.0),
                (A::Simplicity, 1.0),
            ]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_standard_scenarios() {
        let scenarios = standard_scenarios();
        assert_eq!(scenarios.len(), 4);
        let ids: Vec<ScenarioId> = scenarios.iter().map(|s| s.id).collect();
        assert_eq!(ids, ScenarioId::all());
    }

    #[test]
    fn cost_models_encode_the_narrative() {
        let s1 = Scenario::standard(ScenarioId::S1Audit);
        let s2 = Scenario::standard(ScenarioId::S2Gate);
        assert!(s1.cost_ratio() < 1.0, "S1 is FP-dominated");
        assert!(s2.cost_ratio() > 10.0, "S2 is FN-dominated");
        let s4 = Scenario::standard(ScenarioId::S4Triage);
        assert!(s4.typical_prevalence < 0.05, "S4 is low-prevalence");
    }

    #[test]
    fn weight_vectors_cover_all_attributes() {
        for s in standard_scenarios() {
            let v = s.weight_vector();
            assert_eq!(v.len(), MetricAttribute::all().len());
            assert!(
                v.iter().all(|w| *w > 0.0),
                "{}: all attributes weighted",
                s.id
            );
        }
    }

    #[test]
    fn s3_prioritizes_invariance() {
        let s3 = Scenario::standard(ScenarioId::S3Procurement);
        let inv = s3.attribute_weights[&MetricAttribute::PrevalenceInvariance];
        let simp = s3.attribute_weights[&MetricAttribute::Simplicity];
        assert!(inv > simp * 5.0);
    }

    #[test]
    fn custom_scenario_construction() {
        let s = Scenario::custom(5.0, 1.0, 0.25);
        assert_eq!(s.id, ScenarioId::S1Audit, "closest profile is the audit");
        assert!((s.cost_ratio() - 0.2).abs() < 1e-12);
        assert!(s.description.contains("c(FP) = 5"));
        let s = Scenario::custom(1.0, 20.0, 0.15);
        assert_eq!(s.id, ScenarioId::S2Gate);
        let s = Scenario::custom(2.0, 8.0, 0.02);
        assert_eq!(s.id, ScenarioId::S4Triage);
        assert_eq!(s.weight_vector().len(), MetricAttribute::all().len());
    }

    #[test]
    #[should_panic(expected = "prevalence must be in")]
    fn custom_scenario_validates_prevalence() {
        let _ = Scenario::custom(1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn custom_scenario_validates_costs() {
        let _ = Scenario::custom(0.0, 1.0, 0.5);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(ScenarioId::S1Audit.to_string(), "S1");
        assert_eq!(ScenarioId::S4Triage.label(), "S4");
    }
}
