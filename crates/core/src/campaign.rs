//! The standard experiment campaign: scenario workloads and tool roster.
//!
//! Every table/figure binary draws its configuration from here so the
//! whole evaluation is consistent and reproducible from a single seed.

use crate::benchmark::{Benchmark, BenchmarkReport};
use crate::error::Result;
use crate::scenario::Scenario;
use std::sync::RwLock;
use vdbench_corpus::{Corpus, CorpusBuilder};
use vdbench_detectors::{
    Detector, DynamicScanner, FaultConfig, FaultPlan, FaultProfile, FaultyDetector, PatternScanner,
    ProfileTool, ScanPolicy, TaintAnalyzer,
};
use vdbench_metrics::metric::Metric;

/// The process-wide fault-injection configuration (see
/// [`set_fault_injection`]). `None` — the default — means the campaign
/// runs the plain infallible engine and produces byte-identical output to
/// a build without the fault layer.
static FAULT_INJECTION: RwLock<Option<FaultConfig>> = RwLock::new(None);

/// Installs (or clears, with `None`) the process-wide fault-injection
/// configuration consulted by [`run_case_study`].
///
/// The configuration is ambient rather than threaded through every
/// table/figure entry point so the sixteen `run_all` artifacts keep their
/// uniform `fn() -> String` shape; the campaign cache keys on the
/// configuration's fingerprint, so reports computed under different
/// configurations never alias (see [`crate::cache`]).
pub fn set_fault_injection(config: Option<FaultConfig>) {
    *FAULT_INJECTION
        .write()
        .expect("fault-injection config lock poisoned") = config;
}

/// The currently installed fault-injection configuration, if any.
#[must_use]
pub fn fault_injection() -> Option<FaultConfig> {
    *FAULT_INJECTION
        .read()
        .expect("fault-injection config lock poisoned")
}

/// The standard tool roster: two signature scanners, two taint analyzers,
/// two dynamic scanners and two emulated commercial tools — mirroring the
/// tool families of the paper's case studies.
pub fn standard_tools(seed: u64) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(PatternScanner::aggressive()),
        Box::new(PatternScanner::conservative()),
        Box::new(TaintAnalyzer::precise()),
        Box::new(TaintAnalyzer::shallow()),
        Box::new(DynamicScanner::thorough()),
        Box::new(DynamicScanner::quick()),
        // Commercial tools are modelled with imperfect CWE filing: vendor
        // reports notoriously misclassify findings even when detection is
        // sound.
        Box::new(ProfileTool::new("vendor-A", 0.85, 0.08, seed ^ 0xA).with_diagnosis_accuracy(0.8)),
        Box::new(ProfileTool::new("vendor-B", 0.60, 0.01, seed ^ 0xB).with_diagnosis_accuracy(0.9)),
    ]
}

/// The metric columns reported in the case-study tables.
pub fn standard_metrics() -> Vec<Box<dyn Metric>> {
    crate::selection::default_candidates()
}

/// Builds the workload for one scenario: the scenario's size and typical
/// prevalence, with the full default shape mix.
pub fn scenario_corpus(scenario: &Scenario, seed: u64) -> Corpus {
    CorpusBuilder::new()
        .units(scenario.workload_units)
        .vulnerability_density(scenario.typical_prevalence)
        .seed(seed ^ u64::from(scenario.id.label().as_bytes()[1]))
        .build()
}

/// Runs the full case study for one scenario: standard workload, standard
/// tools, standard metrics.
///
/// When a fault-injection configuration is installed (see
/// [`set_fault_injection`]) the run is delegated to
/// [`run_case_study_faulty`]; otherwise the plain infallible engine runs
/// and the output is byte-identical to a build without the fault layer.
///
/// # Errors
///
/// Propagates benchmark configuration errors (cannot occur with the
/// standard roster).
pub fn run_case_study(scenario: &Scenario, seed: u64) -> Result<BenchmarkReport> {
    match fault_injection() {
        Some(cfg) if cfg.profile != FaultProfile::None => {
            run_case_study_faulty(scenario, seed, cfg)
        }
        _ => {
            let _span = vdbench_telemetry::span!(
                "core",
                "case_study",
                scenario = scenario.id,
                units = scenario.workload_units
            );
            Benchmark::new(scenario_corpus(scenario, seed))
                .tools(standard_tools(seed))
                .metrics(standard_metrics())
                .run()
        }
    }
}

/// Runs one scenario's case study with every roster tool wrapped in a
/// [`FaultyDetector`] under `config`, through the resilient engine with
/// the default [`ScanPolicy`] (three attempts, four steps per unit of
/// budget, 50 ms base backoff).
///
/// Failed scans surface as empty outcomes plus
/// [`crate::benchmark::ScanRecord`]s on the report — the campaign
/// completes and renders regardless of how hostile the profile is.
///
/// # Errors
///
/// Propagates benchmark configuration errors (cannot occur with the
/// standard roster). Scan failures are recorded, not raised.
pub fn run_case_study_faulty(
    scenario: &Scenario,
    seed: u64,
    config: FaultConfig,
) -> Result<BenchmarkReport> {
    let _span = vdbench_telemetry::span!(
        "core",
        "case_study_faulty",
        scenario = scenario.id,
        units = scenario.workload_units,
        profile = config.profile.label()
    );
    let tools: Vec<Box<dyn Detector>> = standard_tools(seed)
        .into_iter()
        .map(|t| Box::new(FaultyDetector::new(t, FaultPlan::new(config))) as Box<dyn Detector>)
        .collect();
    Benchmark::new(scenario_corpus(scenario, seed))
        .tools(tools)
        .metrics(standard_metrics())
        .run_resilient(&ScanPolicy::default())
}

/// Renders a complete campaign report as Markdown: per-scenario case
/// studies (metric table + confidence intervals) and the metric-selection
/// summary — the artifact a benchmark operator would attach to a tool
/// procurement decision.
///
/// Case studies and the attribute assessment are served from the
/// process-wide campaign cache ([`crate::cache`]): rendering the report
/// after (or alongside) the table/figure binaries reuses their results,
/// and repeated calls with the same seed are pure cache hits.
///
/// # Errors
///
/// Propagates benchmark/selection errors (cannot occur with the standard
/// configuration).
pub fn markdown_report(seed: u64) -> Result<String> {
    use crate::attributes::AssessmentConfig;
    use crate::selection::{default_candidates, MetricSelector};
    use std::fmt::Write as _;
    use vdbench_stats::Confidence;

    let mut out = String::new();
    let _ = writeln!(out, "# vdbench campaign report (seed {seed:#x})\n");

    let selector = MetricSelector::new(
        default_candidates(),
        AssessmentConfig {
            seed,
            ..AssessmentConfig::default()
        },
    )?;

    for scenario in crate::scenario::standard_scenarios() {
        let _ = writeln!(out, "## {} — {}\n", scenario.id, scenario.name);
        let _ = writeln!(out, "{}\n", scenario.description);
        let report = crate::cache::cached_case_study(&scenario, seed)?;
        out.push_str(&report.to_table("Metric values per tool").render_markdown());
        out.push('\n');
        out.push_str(
            &report
                .to_interval_table(
                    "Recall and precision with Wilson 95% intervals",
                    Confidence::P95,
                )
                .render_markdown(),
        );
        out.push('\n');

        // Degraded runs disclose exactly which tools were unavailable;
        // fault-free runs add nothing, keeping the transcript
        // byte-identical to pre-fault-layer builds.
        if report.degraded() {
            let _ = writeln!(
                out,
                "**Degraded run**: tool availability {:.0}% under fault injection.\n",
                report.availability() * 100.0
            );
            out.push_str(
                &report
                    .to_availability_table("Per-tool scan availability")
                    .render_markdown(),
            );
            out.push('\n');
        }

        // Metric selection for this scenario (7-expert panel, σ = 0.25).
        let panel = vdbench_experts::Panel::homogeneous(
            &scenario.weight_vector(),
            7,
            0.25,
            seed ^ u64::from(scenario.id.label().as_bytes()[1]),
        );
        let outcome = selector.select(&scenario, &panel)?;
        let names: Vec<&str> = selector.candidates().iter().map(|m| m.abbrev()).collect();
        let _ = writeln!(
            out,
            "**Selected metric**: {} (analytical) / {} (MCDA, τ = {:.2}); \
             ranking the roster by it crowns **{}**.\n",
            names[outcome.analytical_ranking[0]],
            names[outcome.mcda_ranking[0]],
            outcome.agreement_tau,
            crate::ranking::rank_by_metric(
                report.outcomes(),
                selector.candidates()[outcome.analytical_ranking[0]].as_ref()
            )?
            .winner(),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{standard_scenarios, ScenarioId};

    #[test]
    fn roster_is_diverse_and_named_uniquely() {
        let tools = standard_tools(1);
        assert_eq!(tools.len(), 8);
        let mut names: Vec<String> = tools.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8, "tool names must be unique");
    }

    #[test]
    fn scenario_corpora_match_specifications() {
        for scenario in standard_scenarios() {
            let corpus = scenario_corpus(&scenario, 42);
            let stats = corpus.stats();
            assert_eq!(stats.units, scenario.workload_units);
            assert!(
                (stats.prevalence - scenario.typical_prevalence).abs() < 0.05,
                "{}: prevalence {} vs target {}",
                scenario.id,
                stats.prevalence,
                scenario.typical_prevalence
            );
        }
    }

    #[test]
    fn corpora_differ_between_scenarios() {
        let s1 = scenario_corpus(&Scenario::standard(ScenarioId::S1Audit), 42);
        let s2 = scenario_corpus(&Scenario::standard(ScenarioId::S2Gate), 42);
        assert_ne!(s1.seed(), s2.seed());
    }

    #[test]
    fn markdown_report_renders() {
        // Small but complete: shrink the workloads via a fast scenario
        // override is not possible here (markdown_report uses standard
        // scenarios), so just verify the real thing once.
        let report = markdown_report(3).unwrap();
        for s in [
            "# vdbench campaign report",
            "## S1",
            "## S4",
            "Selected metric",
            "Wilson 95%",
        ] {
            assert!(report.contains(s), "missing {s}");
        }
    }

    #[test]
    fn case_study_runs_end_to_end() {
        // One small scenario to keep the test fast.
        let mut scenario = Scenario::standard(ScenarioId::S1Audit);
        scenario.workload_units = 80;
        let report = run_case_study(&scenario, 7).unwrap();
        assert_eq!(report.tool_names().len(), 8);
        assert_eq!(report.metric_ids().len(), standard_metrics().len());
        // The dynamic scanner's precision column must not embarrass it.
        let names = report.tool_names();
        let pentest_idx = names.iter().position(|n| *n == "pentest-96-dict").unwrap();
        let ppv = report.value(pentest_idx, 0); // Precision is column 0
        assert!(ppv.is_nan() || ppv > 0.9, "pentest precision {ppv}");
    }
}
