//! The standard experiment campaign: scenario workloads and tool roster.
//!
//! Every table/figure binary draws its configuration from here so the
//! whole evaluation is consistent and reproducible from a single seed.

use crate::benchmark::{Benchmark, BenchmarkReport};
use crate::error::Result;
use crate::scenario::Scenario;
use vdbench_corpus::{Corpus, CorpusBuilder};
use vdbench_detectors::{Detector, DynamicScanner, PatternScanner, ProfileTool, TaintAnalyzer};
use vdbench_metrics::metric::Metric;

/// The standard tool roster: two signature scanners, two taint analyzers,
/// two dynamic scanners and two emulated commercial tools — mirroring the
/// tool families of the paper's case studies.
pub fn standard_tools(seed: u64) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(PatternScanner::aggressive()),
        Box::new(PatternScanner::conservative()),
        Box::new(TaintAnalyzer::precise()),
        Box::new(TaintAnalyzer::shallow()),
        Box::new(DynamicScanner::thorough()),
        Box::new(DynamicScanner::quick()),
        // Commercial tools are modelled with imperfect CWE filing: vendor
        // reports notoriously misclassify findings even when detection is
        // sound.
        Box::new(ProfileTool::new("vendor-A", 0.85, 0.08, seed ^ 0xA).with_diagnosis_accuracy(0.8)),
        Box::new(ProfileTool::new("vendor-B", 0.60, 0.01, seed ^ 0xB).with_diagnosis_accuracy(0.9)),
    ]
}

/// The metric columns reported in the case-study tables.
pub fn standard_metrics() -> Vec<Box<dyn Metric>> {
    crate::selection::default_candidates()
}

/// Builds the workload for one scenario: the scenario's size and typical
/// prevalence, with the full default shape mix.
pub fn scenario_corpus(scenario: &Scenario, seed: u64) -> Corpus {
    CorpusBuilder::new()
        .units(scenario.workload_units)
        .vulnerability_density(scenario.typical_prevalence)
        .seed(seed ^ u64::from(scenario.id.label().as_bytes()[1]))
        .build()
}

/// Runs the full case study for one scenario: standard workload, standard
/// tools, standard metrics.
///
/// # Errors
///
/// Propagates benchmark configuration errors (cannot occur with the
/// standard roster).
pub fn run_case_study(scenario: &Scenario, seed: u64) -> Result<BenchmarkReport> {
    let _span = vdbench_telemetry::span!(
        "core",
        "case_study",
        scenario = scenario.id,
        units = scenario.workload_units
    );
    Benchmark::new(scenario_corpus(scenario, seed))
        .tools(standard_tools(seed))
        .metrics(standard_metrics())
        .run()
}

/// Renders a complete campaign report as Markdown: per-scenario case
/// studies (metric table + confidence intervals) and the metric-selection
/// summary — the artifact a benchmark operator would attach to a tool
/// procurement decision.
///
/// Case studies and the attribute assessment are served from the
/// process-wide campaign cache ([`crate::cache`]): rendering the report
/// after (or alongside) the table/figure binaries reuses their results,
/// and repeated calls with the same seed are pure cache hits.
///
/// # Errors
///
/// Propagates benchmark/selection errors (cannot occur with the standard
/// configuration).
pub fn markdown_report(seed: u64) -> Result<String> {
    use crate::attributes::AssessmentConfig;
    use crate::selection::{default_candidates, MetricSelector};
    use std::fmt::Write as _;
    use vdbench_stats::Confidence;

    let mut out = String::new();
    let _ = writeln!(out, "# vdbench campaign report (seed {seed:#x})\n");

    let selector = MetricSelector::new(
        default_candidates(),
        AssessmentConfig {
            seed,
            ..AssessmentConfig::default()
        },
    )?;

    for scenario in crate::scenario::standard_scenarios() {
        let _ = writeln!(out, "## {} — {}\n", scenario.id, scenario.name);
        let _ = writeln!(out, "{}\n", scenario.description);
        let report = crate::cache::cached_case_study(&scenario, seed)?;
        out.push_str(&report.to_table("Metric values per tool").render_markdown());
        out.push('\n');
        out.push_str(
            &report
                .to_interval_table(
                    "Recall and precision with Wilson 95% intervals",
                    Confidence::P95,
                )
                .render_markdown(),
        );
        out.push('\n');

        // Metric selection for this scenario (7-expert panel, σ = 0.25).
        let panel = vdbench_experts::Panel::homogeneous(
            &scenario.weight_vector(),
            7,
            0.25,
            seed ^ u64::from(scenario.id.label().as_bytes()[1]),
        );
        let outcome = selector.select(&scenario, &panel)?;
        let names: Vec<&str> = selector.candidates().iter().map(|m| m.abbrev()).collect();
        let _ = writeln!(
            out,
            "**Selected metric**: {} (analytical) / {} (MCDA, τ = {:.2}); \
             ranking the roster by it crowns **{}**.\n",
            names[outcome.analytical_ranking[0]],
            names[outcome.mcda_ranking[0]],
            outcome.agreement_tau,
            crate::ranking::rank_by_metric(
                report.outcomes(),
                selector.candidates()[outcome.analytical_ranking[0]].as_ref()
            )?
            .winner(),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{standard_scenarios, ScenarioId};

    #[test]
    fn roster_is_diverse_and_named_uniquely() {
        let tools = standard_tools(1);
        assert_eq!(tools.len(), 8);
        let mut names: Vec<String> = tools.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8, "tool names must be unique");
    }

    #[test]
    fn scenario_corpora_match_specifications() {
        for scenario in standard_scenarios() {
            let corpus = scenario_corpus(&scenario, 42);
            let stats = corpus.stats();
            assert_eq!(stats.units, scenario.workload_units);
            assert!(
                (stats.prevalence - scenario.typical_prevalence).abs() < 0.05,
                "{}: prevalence {} vs target {}",
                scenario.id,
                stats.prevalence,
                scenario.typical_prevalence
            );
        }
    }

    #[test]
    fn corpora_differ_between_scenarios() {
        let s1 = scenario_corpus(&Scenario::standard(ScenarioId::S1Audit), 42);
        let s2 = scenario_corpus(&Scenario::standard(ScenarioId::S2Gate), 42);
        assert_ne!(s1.seed(), s2.seed());
    }

    #[test]
    fn markdown_report_renders() {
        // Small but complete: shrink the workloads via a fast scenario
        // override is not possible here (markdown_report uses standard
        // scenarios), so just verify the real thing once.
        let report = markdown_report(3).unwrap();
        for s in [
            "# vdbench campaign report",
            "## S1",
            "## S4",
            "Selected metric",
            "Wilson 95%",
        ] {
            assert!(report.contains(s), "missing {s}");
        }
    }

    #[test]
    fn case_study_runs_end_to_end() {
        // One small scenario to keep the test fast.
        let mut scenario = Scenario::standard(ScenarioId::S1Audit);
        scenario.workload_units = 80;
        let report = run_case_study(&scenario, 7).unwrap();
        assert_eq!(report.tool_names().len(), 8);
        assert_eq!(report.metric_ids().len(), standard_metrics().len());
        // The dynamic scanner's precision column must not embarrass it.
        let names = report.tool_names();
        let pentest_idx = names.iter().position(|n| *n == "pentest-96-dict").unwrap();
        let ppv = report.value(pentest_idx, 0); // Precision is column 0
        assert!(ppv.is_nan() || ppv > 0.9, "pentest precision {ppv}");
    }
}
