//! Definedness: how often is the metric undefined on matrices benchmarks
//! actually produce?
//!
//! Benchmarks routinely produce degenerate matrices — a tool that reports
//! nothing, a workload slice with no vulnerable units, a class-restricted
//! view with a single class. A metric that errors out on those cannot
//! anchor a benchmark report. The score is the fraction of a fixed stress
//! battery on which the metric is defined.

use vdbench_metrics::metric::Metric;
use vdbench_metrics::ConfusionMatrix;

/// The stress battery: realistic degenerate-but-reachable matrices, from
/// benign to hostile.
pub fn stress_battery() -> Vec<(&'static str, ConfusionMatrix)> {
    vec![
        ("balanced", ConfusionMatrix::new(30, 10, 10, 50)),
        ("silent tool", ConfusionMatrix::new(0, 0, 20, 80)),
        ("report-everything tool", ConfusionMatrix::new(20, 80, 0, 0)),
        ("no vulnerable units", ConfusionMatrix::new(0, 10, 0, 90)),
        ("all vulnerable units", ConfusionMatrix::new(70, 0, 30, 0)),
        ("perfect tool", ConfusionMatrix::new(20, 0, 0, 80)),
        ("fully wrong tool", ConfusionMatrix::new(0, 80, 20, 0)),
        ("single true positive", ConfusionMatrix::new(1, 0, 0, 99)),
        ("tiny workload", ConfusionMatrix::new(1, 1, 1, 1)),
    ]
}

/// Scores definedness in `[0, 1]` as the defined fraction of the battery.
pub fn score(metric: &dyn Metric) -> f64 {
    let battery = stress_battery();
    let defined = battery
        .iter()
        .filter(|(_, cm)| metric.compute(cm).is_ok())
        .count();
    defined as f64 / battery.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Accuracy, Precision, Recall};
    use vdbench_metrics::composite::{DiagnosticOddsRatio, Mcc};
    use vdbench_metrics::cost::ExpectedCost;

    #[test]
    fn accuracy_and_cost_are_always_defined() {
        assert_eq!(score(&Accuracy), 1.0);
        assert_eq!(score(&ExpectedCost::balanced()), 1.0);
    }

    #[test]
    fn precision_and_recall_have_holes() {
        assert!(score(&Precision) < 1.0);
        assert!(score(&Recall) < 1.0);
        assert!(score(&Precision) > 0.5);
    }

    #[test]
    fn odds_ratio_is_most_fragile() {
        let dor = score(&DiagnosticOddsRatio);
        let mcc = score(&Mcc);
        assert!(dor <= mcc, "dor {dor} vs mcc {mcc}");
        assert!(dor < 0.5);
    }

    #[test]
    fn battery_is_nontrivial() {
        let battery = stress_battery();
        assert!(battery.len() >= 8);
        // Every battery entry is non-empty.
        assert!(battery.iter().all(|(_, cm)| cm.total() > 0));
    }
}
