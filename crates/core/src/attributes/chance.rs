//! Chance correction: do random tools score a fixed reference value?
//!
//! A *random* tool reports each unit with probability `r` independent of
//! the truth. A chance-corrected metric assigns every such tool the same
//! reference value (0 for correlations, 1 for ratios) no matter what `r`
//! or the workload prevalence is — so "better than random" is visible at a
//! glance. The score measures how constant the metric is across a grid of
//! random tools.

use super::AssessmentConfig;
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::OperatingPoint;

const REPORT_RATES: [f64; 5] = [0.05, 0.2, 0.4, 0.6, 0.9];
const PREVALENCES: [f64; 3] = [0.05, 0.2, 0.4];

/// Scores chance correction in `[0, 1]`.
pub fn score(metric: &dyn Metric, cfg: &AssessmentConfig) -> f64 {
    let total = cfg.workload_size.max(10_000);
    let mut values = Vec::new();
    for &prev in &PREVALENCES {
        let positives = ((total as f64) * prev).round().max(1.0) as u64;
        let negatives = total - positives.min(total - 1);
        for &rate in &REPORT_RATES {
            let op = OperatingPoint::random(rate);
            let cm = op.to_confusion(positives, negatives);
            let v = metric.compute_or_nan(&cm);
            if v.is_finite() {
                values.push(v);
            }
        }
    }
    if values.len() < (REPORT_RATES.len() * PREVALENCES.len()) / 2 {
        return 0.0;
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let spread = max - min;
    // Random tools should collapse to a point; measure the spread against
    // the metric's own declared range where it is bounded, or the observed
    // magnitude otherwise.
    let range = metric.properties().range;
    let scale = if range.is_bounded() {
        range.width()
    } else {
        values
            .iter()
            .map(|v| v.abs())
            .fold(0.0_f64, f64::max)
            .max(1e-9)
    };
    (1.0 - spread / scale).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Accuracy, Precision, Recall};
    use vdbench_metrics::chance::CohenKappa;
    use vdbench_metrics::composite::{BalancedAccuracy, Informedness, Mcc};

    #[test]
    fn corrected_metrics_score_high() {
        let cfg = AssessmentConfig::default();
        for m in [
            Box::new(Informedness) as Box<dyn Metric>,
            Box::new(Mcc),
            Box::new(CohenKappa),
            Box::new(BalancedAccuracy),
        ] {
            let s = score(m.as_ref(), &cfg);
            assert!(s > 0.95, "{} chance correction {s}", m.abbrev());
        }
    }

    #[test]
    fn uncorrected_metrics_score_low() {
        let cfg = AssessmentConfig::default();
        for m in [
            Box::new(Recall) as Box<dyn Metric>,
            Box::new(Accuracy),
            Box::new(Precision),
        ] {
            let s = score(m.as_ref(), &cfg);
            assert!(s < 0.7, "{} should drift with report rate: {s}", m.abbrev());
        }
    }
}
