//! Prevalence invariance: is the metric stable across workload mixes?
//!
//! A fixed reference tool (TPR 0.8, FPR 0.1) is realized on workloads
//! whose vulnerability density sweeps 0.5% → 50%. A metric adequate for
//! cross-workload comparison should barely move; precision, accuracy and
//! NPV famously swing wildly. The score maps the relative spread of the
//! metric values to `[0, 1]` (1 = perfectly invariant).

use super::AssessmentConfig;
use vdbench_metrics::metric::Metric;
use vdbench_metrics::OperatingPoint;

/// The density grid used by the sweep (mirrors Fig. 1).
pub const DENSITY_GRID: [f64; 9] = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

/// The fixed reference operating point used by the sweep.
pub fn reference_tool() -> OperatingPoint {
    OperatingPoint::new(0.8, 0.1)
}

/// The metric's value at each grid density for a fixed tool, `NaN` where
/// undefined — the raw data behind Fig. 1.
pub fn sweep(metric: &dyn Metric, cfg: &AssessmentConfig) -> Vec<(f64, f64)> {
    // A large synthetic workload keeps integer rounding negligible.
    let total = cfg.workload_size.max(10_000);
    DENSITY_GRID
        .iter()
        .map(|&density| {
            let positives = ((total as f64) * density).round().max(1.0) as u64;
            let negatives = total - positives.min(total - 1);
            let v = super::oriented_at(metric, reference_tool(), positives, negatives)
                .unwrap_or(f64::NAN);
            (density, v)
        })
        .collect()
}

/// Scores prevalence invariance in `[0, 1]`.
pub fn score(metric: &dyn Metric, cfg: &AssessmentConfig) -> f64 {
    let values: Vec<f64> = sweep(metric, cfg)
        .into_iter()
        .map(|(_, v)| v)
        .filter(|v| v.is_finite())
        .collect();
    if values.len() < DENSITY_GRID.len() / 2 {
        // Undefined on most of the sweep: useless for cross-workload use.
        return 0.0;
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let spread = max - min;
    let scale = values
        .iter()
        .map(|v| v.abs())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    // Relative spread 0 → score 1; spread equal to the value scale → 0.5.
    1.0 / (1.0 + spread / scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Accuracy, Npv, Precision, Recall, Specificity};
    use vdbench_metrics::composite::{BalancedAccuracy, GMean, Informedness};

    #[test]
    fn rate_metrics_are_invariant() {
        let cfg = AssessmentConfig::default();
        for m in [
            Box::new(Recall) as Box<dyn Metric>,
            Box::new(Specificity),
            Box::new(Informedness),
            Box::new(BalancedAccuracy),
            Box::new(GMean),
        ] {
            let s = score(m.as_ref(), &cfg);
            assert!(s > 0.98, "{} invariance {s}", m.abbrev());
        }
    }

    #[test]
    fn predictive_values_are_not_invariant() {
        let cfg = AssessmentConfig::default();
        let p = score(&Precision, &cfg);
        assert!(p < 0.7, "precision should swing with prevalence: {p}");
        let n = score(&Npv, &cfg);
        assert!(n < 0.9, "NPV should swing with prevalence: {n}");
        // Accuracy at a *fixed operating point* is only mildly
        // prevalence-dependent — its real failure mode is chance
        // correction, covered by the `chance` attribute.
        let a = score(&Accuracy, &cfg);
        assert!(a > 0.85, "accuracy invariance {a}");
    }

    #[test]
    fn sweep_has_grid_shape() {
        let cfg = AssessmentConfig::default();
        let data = sweep(&Precision, &cfg);
        assert_eq!(data.len(), DENSITY_GRID.len());
        // Precision grows with density at a fixed operating point.
        let first = data.first().unwrap().1;
        let last = data.last().unwrap().1;
        assert!(last > first + 0.3, "precision sweep {first} → {last}");
    }
}
