//! Empirical verification of the catalog's monotonicity metadata.
//!
//! Each metric declares how it responds to TPR and FPR changes
//! ([`vdbench_metrics::properties::Monotonicity`]). This module *checks*
//! those analytical claims against a dense ROC grid, so the catalog's
//! metadata is audited rather than trusted — a small self-verification the
//! selection study leans on when it reasons from declared properties.

use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::properties::Monotonicity;
use vdbench_metrics::roc::roc_grid;
use vdbench_metrics::OperatingPoint;

/// The observed behaviour of one metric along one rate axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisReport {
    /// What the catalog claims.
    pub claimed: Monotonicity,
    /// Fraction of grid transitions where increasing the rate increased
    /// the raw metric value.
    pub increasing_fraction: f64,
    /// Fraction where it decreased.
    pub decreasing_fraction: f64,
    /// Fraction where it stayed exactly constant.
    pub constant_fraction: f64,
    /// Transitions where both values were defined.
    pub comparisons: usize,
}

impl AxisReport {
    /// Whether the observations are consistent with the claim (within a
    /// 2% tolerance for numerical ties on coarse grids).
    pub fn consistent(&self) -> bool {
        const TOL: f64 = 0.02;
        match self.claimed {
            Monotonicity::Increasing => self.decreasing_fraction <= TOL,
            Monotonicity::Decreasing => self.increasing_fraction <= TOL,
            Monotonicity::Independent => self.constant_fraction >= 1.0 - TOL,
            Monotonicity::Mixed => true,
        }
    }
}

/// Full monotonicity report for one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonotonicityReport {
    /// Behaviour along the TPR axis (FPR held fixed).
    pub tpr_axis: AxisReport,
    /// Behaviour along the FPR axis (TPR held fixed).
    pub fpr_axis: AxisReport,
}

impl MonotonicityReport {
    /// Whether both axes match the catalog claims.
    pub fn consistent(&self) -> bool {
        self.tpr_axis.consistent() && self.fpr_axis.consistent()
    }
}

/// Verifies a metric's declared monotonicity on a `steps × steps` interior
/// ROC grid realized on a workload with the given class sizes.
pub fn verify_monotonicity(
    metric: &dyn Metric,
    steps: usize,
    positives: u64,
    negatives: u64,
) -> MonotonicityReport {
    let grid = roc_grid(steps);
    let value = |op: &OperatingPoint| -> Option<f64> {
        let cm = op.to_confusion(positives, negatives);
        let v = metric.compute_or_nan(&cm);
        v.is_finite().then_some(v)
    };

    let props = metric.properties();
    let mut tpr_axis = Counter::new(props.monotone_tpr);
    let mut fpr_axis = Counter::new(props.monotone_fpr);
    let step = 1.0 / (steps + 1) as f64;
    for op in &grid {
        // Neighbour with higher TPR (same FPR).
        if op.tpr + step < 1.0 {
            let next = OperatingPoint::new(op.tpr + step, op.fpr);
            if let (Some(a), Some(b)) = (value(op), value(&next)) {
                tpr_axis.record(a, b);
            }
        }
        // Neighbour with higher FPR (same TPR).
        if op.fpr + step < 1.0 {
            let next = OperatingPoint::new(op.tpr, op.fpr + step);
            if let (Some(a), Some(b)) = (value(op), value(&next)) {
                fpr_axis.record(a, b);
            }
        }
    }
    MonotonicityReport {
        tpr_axis: tpr_axis.finish(),
        fpr_axis: fpr_axis.finish(),
    }
}

struct Counter {
    claimed: Monotonicity,
    inc: usize,
    dec: usize,
    eq: usize,
}

impl Counter {
    fn new(claimed: Monotonicity) -> Self {
        Counter {
            claimed,
            inc: 0,
            dec: 0,
            eq: 0,
        }
    }

    fn record(&mut self, before: f64, after: f64) {
        // Integer realization quantizes: use a small tolerance for ties.
        if (after - before).abs() < 1e-12 {
            self.eq += 1;
        } else if after > before {
            self.inc += 1;
        } else {
            self.dec += 1;
        }
    }

    fn finish(self) -> AxisReport {
        let n = (self.inc + self.dec + self.eq).max(1);
        AxisReport {
            claimed: self.claimed,
            increasing_fraction: self.inc as f64 / n as f64,
            decreasing_fraction: self.dec as f64 / n as f64,
            constant_fraction: self.eq as f64 / n as f64,
            comparisons: self.inc + self.dec + self.eq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::standard_catalog;

    #[test]
    fn every_catalog_claim_is_empirically_consistent() {
        // Large class sizes keep integer rounding away from the
        // comparisons; 9x9 interior grid = up to 144 transitions per axis.
        for metric in standard_catalog() {
            let report = verify_monotonicity(metric.as_ref(), 9, 10_000, 40_000);
            assert!(
                report.consistent(),
                "{}: claims {:?}/{:?}, observed TPR axis {:?}, FPR axis {:?}",
                metric.abbrev(),
                metric.properties().monotone_tpr,
                metric.properties().monotone_fpr,
                report.tpr_axis,
                report.fpr_axis,
            );
            assert!(report.tpr_axis.comparisons > 50);
        }
    }

    #[test]
    fn recall_axes_are_as_declared() {
        use vdbench_metrics::basic::Recall;
        let report = verify_monotonicity(&Recall, 9, 10_000, 40_000);
        assert!(report.tpr_axis.increasing_fraction > 0.98);
        assert!(report.fpr_axis.constant_fraction > 0.98);
    }

    #[test]
    fn fallout_decreases_oriented_but_increases_raw() {
        use vdbench_metrics::basic::Fallout;
        // Fallout's raw value increases with FPR (claimed Increasing on
        // the FPR axis even though the metric is lower-is-better).
        let report = verify_monotonicity(&Fallout, 9, 10_000, 40_000);
        assert!(report.fpr_axis.increasing_fraction > 0.98);
        assert!(report.consistent());
    }
}
