//! Validity: does the metric track latent tool quality?
//!
//! A ladder of hypothetical tools is built whose *latent quality* `q` is
//! known by construction (quality controls how far above the chance
//! diagonal the tool operates). The metric is computed for every tool on a
//! reference workload; validity is the Spearman rank correlation between
//! the oriented metric values and `q`, mapped to `[0, 1]`.

use super::AssessmentConfig;
use vdbench_metrics::metric::Metric;
use vdbench_metrics::OperatingPoint;
use vdbench_stats::correlation::spearman;
use vdbench_stats::SeededRng;

/// Scores validity in `[0, 1]`.
pub fn score(metric: &dyn Metric, cfg: &AssessmentConfig) -> f64 {
    let mut rng = SeededRng::new(cfg.seed ^ 0x0001_11D1);
    let positives = ((cfg.workload_size as f64) * cfg.reference_prevalence).round() as u64;
    let positives = positives.clamp(1, cfg.workload_size - 1);
    let negatives = cfg.workload_size - positives;

    let mut qualities = Vec::with_capacity(cfg.tool_sample);
    let mut values = Vec::with_capacity(cfg.tool_sample);
    for _ in 0..cfg.tool_sample {
        let q = rng.uniform();
        // Quality q lifts the operating point above the chance diagonal;
        // a small perpendicular jitter decorrelates quality from any one
        // specific formula.
        let base = rng.uniform_in(0.05, 0.95);
        let jitter = rng.normal(0.0, 0.03);
        let tpr = (base + q * (1.0 - base) + jitter).clamp(0.0, 1.0);
        let fpr = (base * (1.0 - q) + jitter).clamp(0.0, 1.0);
        let op = OperatingPoint::new(tpr, fpr);
        if let Some(v) = super::oriented_at(metric, op, positives, negatives) {
            qualities.push(q);
            values.push(v);
        }
    }
    if values.len() < 5 {
        return 0.0;
    }
    match spearman(&values, &qualities) {
        Ok(rho) => rho.clamp(0.0, 1.0),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Fallout, Recall};
    use vdbench_metrics::composite::{Informedness, Mcc};

    #[test]
    fn informative_metrics_have_high_validity() {
        let cfg = AssessmentConfig::default();
        for m in [Box::new(Informedness) as Box<dyn Metric>, Box::new(Mcc)] {
            let s = score(m.as_ref(), &cfg);
            assert!(s > 0.85, "{} validity {s}", m.abbrev());
        }
    }

    #[test]
    fn single_rate_metrics_are_less_valid_than_full_matrix_ones() {
        let cfg = AssessmentConfig::default();
        let recall = score(&Recall, &cfg);
        let mcc = score(&Mcc, &cfg);
        assert!(
            mcc >= recall,
            "full-matrix metric at least as valid: mcc {mcc} vs recall {recall}"
        );
    }

    #[test]
    fn oriented_cost_metrics_score_positively() {
        let cfg = AssessmentConfig::default();
        let fallout = score(&Fallout, &cfg);
        assert!(fallout > 0.0, "oriented fallout tracks quality: {fallout}");
    }

    #[test]
    fn deterministic() {
        let cfg = AssessmentConfig::default();
        assert_eq!(score(&Mcc, &cfg), score(&Mcc, &cfg));
    }
}
