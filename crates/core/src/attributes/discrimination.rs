//! Discriminative power: separating two close tools on finite data.
//!
//! Two tools five points of recall apart are realized on a finite workload
//! many times (each realization draws binomial outcome noise). The score is
//! the probability that the metric orders them correctly — the engine
//! behind Fig. 2, where the probability is traced as a function of
//! workload size.

use super::AssessmentConfig;
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::ConfusionMatrix;
use vdbench_stats::SeededRng;

/// The baseline better tool.
const GOOD: (f64, f64) = (0.75, 0.10);
/// The close worse tool (five points of recall below, same FPR).
const CLOSE: (f64, f64) = (0.70, 0.10);

/// Probability that `metric` correctly orders the two reference tools on a
/// workload of `n` cases at `prevalence`, over `replicates` binomial
/// realizations — the Fig. 2 primitive.
pub fn separation_probability(
    metric: &dyn Metric,
    n: u64,
    prevalence: f64,
    replicates: usize,
    rng: &mut SeededRng,
) -> f64 {
    let positives = ((n as f64) * prevalence).round().max(1.0) as u64;
    let positives = positives.min(n - 1);
    let negatives = n - positives;
    let mut wins = 0usize;
    let mut valid = 0usize;
    for _ in 0..replicates {
        let good = realize(GOOD, positives, negatives, rng);
        let close = realize(CLOSE, positives, negatives, rng);
        let vg = oriented_or_nan(metric, &good);
        let vc = oriented_or_nan(metric, &close);
        if vg.is_nan() || vc.is_nan() {
            continue;
        }
        valid += 1;
        // Ties deliberately count as failures: a metric that cannot
        // separate the tools has not separated them.
        if vg > vc {
            wins += 1;
        }
    }
    if valid == 0 {
        0.0
    } else {
        wins as f64 / valid as f64
    }
}

fn realize(
    (tpr, fpr): (f64, f64),
    positives: u64,
    negatives: u64,
    rng: &mut SeededRng,
) -> ConfusionMatrix {
    let tp = rng.binomial(positives as usize, tpr) as u64;
    let fp = rng.binomial(negatives as usize, fpr) as u64;
    ConfusionMatrix::new(tp, fp, positives - tp, negatives - fp)
}

fn oriented_or_nan(metric: &dyn Metric, cm: &ConfusionMatrix) -> f64 {
    let v = metric.compute_or_nan(cm);
    if metric.higher_is_better() {
        v
    } else {
        -v
    }
}

/// Scores discriminative power in `[0, 1]` at the reference workload size.
pub fn score(metric: &dyn Metric, cfg: &AssessmentConfig) -> f64 {
    let mut rng = SeededRng::new(cfg.seed ^ 0x0D15_C12B);
    separation_probability(
        metric,
        cfg.workload_size,
        cfg.reference_prevalence,
        cfg.replicates,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Recall, Specificity};
    use vdbench_metrics::composite::Informedness;

    #[test]
    fn recall_separates_recall_differences() {
        let cfg = AssessmentConfig::default();
        let s = score(&Recall, &cfg);
        assert!(s > 0.7, "recall separation {s}");
    }

    #[test]
    fn specificity_cannot_see_a_recall_difference() {
        let cfg = AssessmentConfig::default();
        let s = score(&Specificity, &cfg);
        assert!(s < 0.65, "specificity is blind to TPR changes: {s}");
    }

    #[test]
    fn probability_increases_with_workload_size() {
        let mut rng = SeededRng::new(3);
        let small = separation_probability(&Informedness, 50, 0.2, 400, &mut rng);
        let large = separation_probability(&Informedness, 3000, 0.2, 400, &mut rng);
        assert!(
            large > small,
            "more data, better separation: {small} → {large}"
        );
        assert!(large > 0.85);
    }
}
