//! Empirical assessment of the *characteristics of a good metric*.
//!
//! The paper's first stage analyzes each gathered metric "according to the
//! characteristics of a good metric for the vulnerability detection
//! domain". This module makes each characteristic *measurable*: every
//! attribute is scored in `[0, 1]` (1 = ideal) by simulation against
//! controlled tool populations and workloads, so Table 2 is computed, not
//! asserted.
//!
//! | Attribute | Question answered | Module |
//! |---|---|---|
//! | Validity | does the metric track true tool quality? | [`validity`] |
//! | Cost alignment | does it rank tools like the scenario's real cost? | [`cost_alignment`](fn@cost_alignment) |
//! | Prevalence invariance | is it stable across workload mixes? | [`prevalence`] |
//! | Chance correction | do random tools score a fixed reference? | [`chance`] |
//! | Discriminative power | can it separate close tools on finite data? | [`discrimination`] |
//! | Stability | how noisy is it on one finite workload? | [`stability`] |
//! | Definedness | how often is it undefined in practice? | [`definedness`] |
//! | Simplicity | can benchmark consumers interpret it? | catalog metadata |

pub mod chance;
pub mod definedness;
pub mod discrimination;
pub mod monotonic;
pub mod prevalence;
pub mod stability;
pub mod validity;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::{ConfusionMatrix, MetricId, OperatingPoint};
use vdbench_stats::SeededRng;

/// The characteristics of a good metric, as assessed by this engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricAttribute {
    /// Correlation with latent tool quality.
    Validity,
    /// Agreement with the scenario's true cost ordering of tools.
    CostAlignment,
    /// Insensitivity to workload vulnerability density at a fixed
    /// operating point.
    PrevalenceInvariance,
    /// Random tools score a fixed reference value.
    ChanceCorrection,
    /// Probability of correctly ordering two close tools on finite data.
    DiscriminativePower,
    /// Low sampling noise on a finite workload.
    Stability,
    /// Defined on the confusion matrices benchmarks actually produce.
    Definedness,
    /// Interpretability for benchmark consumers.
    Simplicity,
}

impl MetricAttribute {
    /// All attributes in presentation order.
    pub fn all() -> &'static [MetricAttribute] {
        &[
            MetricAttribute::Validity,
            MetricAttribute::CostAlignment,
            MetricAttribute::PrevalenceInvariance,
            MetricAttribute::ChanceCorrection,
            MetricAttribute::DiscriminativePower,
            MetricAttribute::Stability,
            MetricAttribute::Definedness,
            MetricAttribute::Simplicity,
        ]
    }

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            MetricAttribute::Validity => "valid",
            MetricAttribute::CostAlignment => "cost",
            MetricAttribute::PrevalenceInvariance => "prev-inv",
            MetricAttribute::ChanceCorrection => "chance",
            MetricAttribute::DiscriminativePower => "discrim",
            MetricAttribute::Stability => "stable",
            MetricAttribute::Definedness => "defined",
            MetricAttribute::Simplicity => "simple",
        }
    }
}

impl fmt::Display for MetricAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of the assessment simulations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssessmentConfig {
    /// Workload size (benchmark cases) for finite-sample attributes.
    pub workload_size: u64,
    /// Reference prevalence for finite-sample attributes.
    pub reference_prevalence: f64,
    /// Number of hypothetical tools sampled for validity / cost alignment.
    pub tool_sample: usize,
    /// Bootstrap / Monte-Carlo replicates.
    pub replicates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AssessmentConfig {
    /// 400-case workloads at 20% prevalence, 150 sampled tools, 300
    /// replicates.
    fn default() -> Self {
        AssessmentConfig {
            workload_size: 400,
            reference_prevalence: 0.2,
            tool_sample: 150,
            replicates: 300,
            seed: 0xA55E55,
        }
    }
}

/// The scored attribute sheet of one metric (generic attributes only;
/// [`cost_alignment`] is scenario-specific and computed separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeAssessment {
    /// The assessed metric.
    pub metric: MetricId,
    /// Attribute → score in `[0, 1]`.
    pub scores: BTreeMap<MetricAttribute, f64>,
}

impl AttributeAssessment {
    /// The score for one attribute (0 when not assessed).
    pub fn score(&self, attribute: MetricAttribute) -> f64 {
        self.scores.get(&attribute).copied().unwrap_or(0.0)
    }
}

/// Assesses every metric in a catalog against the generic attributes.
///
/// Scenario-specific cost alignment is added by callers via
/// [`cost_alignment`] so the expensive generic work is done once.
///
/// Metrics are assessed in parallel on the rayon pool. Every attribute
/// scorer seeds its own RNG from `cfg.seed` (never from shared state), so
/// the sheet computed for each metric — and therefore the whole returned
/// vector, which preserves catalog order — is bit-identical to the serial
/// evaluation regardless of thread count.
pub fn assess_catalog(
    metrics: &[Box<dyn Metric>],
    cfg: &AssessmentConfig,
) -> Vec<AttributeAssessment> {
    let _span = vdbench_telemetry::span!("core", "assess_catalog", metrics = metrics.len());
    metrics
        .par_iter()
        .map(|m| {
            let _span = vdbench_telemetry::span!("core", "assess_metric", metric = m.abbrev());
            let mut scores = BTreeMap::new();
            scores.insert(MetricAttribute::Validity, validity::score(m.as_ref(), cfg));
            scores.insert(
                MetricAttribute::PrevalenceInvariance,
                prevalence::score(m.as_ref(), cfg),
            );
            scores.insert(
                MetricAttribute::ChanceCorrection,
                chance::score(m.as_ref(), cfg),
            );
            scores.insert(
                MetricAttribute::DiscriminativePower,
                discrimination::score(m.as_ref(), cfg),
            );
            scores.insert(
                MetricAttribute::Stability,
                stability::score(m.as_ref(), cfg),
            );
            scores.insert(MetricAttribute::Definedness, definedness::score(m.as_ref()));
            scores.insert(
                MetricAttribute::Simplicity,
                f64::from(m.properties().simplicity) / 5.0,
            );
            AttributeAssessment {
                metric: m.id(),
                scores,
            }
        })
        .collect()
}

/// Scenario-specific attribute: how well the metric's ranking of a tool
/// population agrees with the scenario's *true expected cost* ranking.
///
/// Samples `cfg.tool_sample` plausible tools, realizes each on a workload
/// at the scenario's prevalence, ranks them by the metric and by true cost
/// (`fp_cost · FP + fn_cost · FN`), and maps the Kendall τ between the two
/// rankings to `[0, 1]`.
pub fn cost_alignment(
    metric: &dyn Metric,
    fp_cost: f64,
    fn_cost: f64,
    prevalence: f64,
    cfg: &AssessmentConfig,
) -> f64 {
    let mut rng = SeededRng::new(cfg.seed ^ 0x00C0_57A1);
    let tools = sample_tools(cfg.tool_sample, &mut rng);
    let positives = ((cfg.workload_size as f64) * prevalence).round() as u64;
    let positives = positives.clamp(1, cfg.workload_size - 1);
    let negatives = cfg.workload_size - positives;

    let mut metric_scores = Vec::new();
    let mut cost_scores = Vec::new();
    for op in &tools {
        let cm = op.to_confusion(positives, negatives);
        let Ok(v) = metric.oriented(&cm) else {
            continue; // undefined on this tool: excluded from the ranking
        };
        metric_scores.push(v);
        cost_scores.push(-(fp_cost * cm.fp as f64 + fn_cost * cm.fn_ as f64));
    }
    if metric_scores.len() < 3 {
        return 0.0;
    }
    match vdbench_stats::correlation::kendall_tau(&metric_scores, &cost_scores) {
        Ok(tau) => ((tau + 1.0) / 2.0).clamp(0.0, 1.0),
        Err(_) => 0.0,
    }
}

/// Samples a plausible population of tools: mostly better than chance,
/// spanning quiet/precise to chatty/sensitive behaviour.
pub(crate) fn sample_tools(count: usize, rng: &mut SeededRng) -> Vec<OperatingPoint> {
    (0..count)
        .map(|_| {
            let tpr = rng.uniform_in(0.2, 1.0);
            // FPR mostly below TPR (useful tools), occasionally above.
            let fpr = if rng.bernoulli(0.9) {
                rng.uniform_in(0.0, (tpr * 0.8).max(0.01))
            } else {
                rng.uniform_in(0.0, 1.0)
            };
            OperatingPoint::new(tpr, fpr)
        })
        .collect()
}

/// Oriented metric value on a synthesized matrix, `None` when undefined —
/// shared helper for the attribute submodules.
pub(crate) fn oriented_at(
    metric: &dyn Metric,
    op: OperatingPoint,
    positives: u64,
    negatives: u64,
) -> Option<f64> {
    let cm: ConfusionMatrix = op.to_confusion(positives, negatives);
    metric.oriented(&cm).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Accuracy, Precision, Recall};
    use vdbench_metrics::composite::{Informedness, Mcc};
    use vdbench_metrics::cost::ExpectedCost;
    use vdbench_metrics::standard_catalog;

    fn quick_cfg() -> AssessmentConfig {
        AssessmentConfig {
            workload_size: 200,
            reference_prevalence: 0.2,
            tool_sample: 40,
            replicates: 120,
            seed: 7,
        }
    }

    #[test]
    fn attribute_labels_unique() {
        let mut labels: Vec<&str> = MetricAttribute::all().iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MetricAttribute::all().len());
        assert_eq!(MetricAttribute::Validity.to_string(), "valid");
    }

    #[test]
    fn assess_catalog_scores_everything_in_unit_range() {
        let catalog = standard_catalog();
        let sheets = assess_catalog(&catalog, &quick_cfg());
        assert_eq!(sheets.len(), catalog.len());
        for sheet in &sheets {
            // Seven generic attributes assessed.
            assert_eq!(sheet.scores.len(), 7);
            for (attr, score) in &sheet.scores {
                assert!(
                    (0.0..=1.0).contains(score),
                    "{:?} {attr:?} = {score}",
                    sheet.metric
                );
            }
            assert_eq!(sheet.score(MetricAttribute::CostAlignment), 0.0);
        }
    }

    #[test]
    fn cost_alignment_favors_matching_metrics() {
        let cfg = quick_cfg();
        // FP-dominated scenario: precision must align better than recall.
        let p = cost_alignment(&Precision, 5.0, 1.0, 0.25, &cfg);
        let r = cost_alignment(&Recall, 5.0, 1.0, 0.25, &cfg);
        assert!(p > r, "precision {p} vs recall {r} under FP costs");
        // FN-dominated scenario: recall must align better than precision.
        let p = cost_alignment(&Precision, 1.0, 20.0, 0.15, &cfg);
        let r = cost_alignment(&Recall, 1.0, 20.0, 0.15, &cfg);
        assert!(r > p, "recall {r} vs precision {p} under FN costs");
    }

    #[test]
    fn matched_cost_metric_aligns_near_perfectly() {
        let cfg = quick_cfg();
        let nec = ExpectedCost::new(5.0, 1.0);
        let score = cost_alignment(&nec, 5.0, 1.0, 0.25, &cfg);
        assert!(score > 0.95, "matched cost metric alignment {score}");
    }

    #[test]
    fn matched_cost_model_dominates_at_low_prevalence() {
        // At 2% prevalence FP counts dwarf FN counts, so accuracy (implicit
        // 1:1 cost) aligns deceptively well with any FP-heavy cost — but
        // the *matched* cost metric must still be at least as aligned, and
        // recall (which ignores FP entirely) must crater.
        let cfg = quick_cfg();
        let acc = cost_alignment(&Accuracy, 2.0, 8.0, 0.02, &cfg);
        let matched = cost_alignment(&ExpectedCost::new(2.0, 8.0), 2.0, 8.0, 0.02, &cfg);
        let recall = cost_alignment(&Recall, 2.0, 8.0, 0.02, &cfg);
        assert!(
            matched >= acc,
            "matched cost metric at least as aligned (matched {matched}, acc {acc})"
        );
        assert!(
            matched > 0.95,
            "matched cost metric near-perfect: {matched}"
        );
        assert!(
            recall < acc - 0.1,
            "recall ignores the dominant error type (recall {recall}, acc {acc})"
        );
        // The chance-corrected alternatives remain decent without a cost
        // model at all.
        let inf = cost_alignment(&Informedness, 2.0, 8.0, 0.02, &cfg);
        let mcc = cost_alignment(&Mcc, 2.0, 8.0, 0.02, &cfg);
        assert!(inf > recall && mcc > recall, "inf {inf}, mcc {mcc}");
    }

    #[test]
    fn sampled_tools_are_valid_points() {
        let mut rng = SeededRng::new(1);
        let tools = sample_tools(100, &mut rng);
        assert_eq!(tools.len(), 100);
        let useful = tools.iter().filter(|t| t.better_than_chance()).count();
        assert!(useful > 70, "most sampled tools are useful: {useful}");
    }
}
