//! Stability: sampling noise of the metric on one finite workload.
//!
//! A reference tool is realized repeatedly on same-size workloads (binomial
//! outcome noise); the metric's dispersion across realizations, relative to
//! its usable range, determines the score (1 = rock-stable).

use super::AssessmentConfig;
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::ConfusionMatrix;
use vdbench_stats::{SeededRng, Summary};

const REFERENCE_TOOL: (f64, f64) = (0.75, 0.10);

/// Scores stability in `[0, 1]`.
pub fn score(metric: &dyn Metric, cfg: &AssessmentConfig) -> f64 {
    let mut rng = SeededRng::new(cfg.seed ^ 0x57AB_1E00);
    let positives = ((cfg.workload_size as f64) * cfg.reference_prevalence)
        .round()
        .max(1.0) as u64;
    let positives = positives.min(cfg.workload_size - 1);
    let negatives = cfg.workload_size - positives;
    let (tpr, fpr) = REFERENCE_TOOL;

    let mut summary = Summary::new();
    for _ in 0..cfg.replicates {
        let tp = rng.binomial(positives as usize, tpr) as u64;
        let fp = rng.binomial(negatives as usize, fpr) as u64;
        let cm = ConfusionMatrix::new(tp, fp, positives - tp, negatives - fp);
        let v = metric.compute_or_nan(&cm);
        if v.is_finite() {
            summary.push(v);
        }
    }
    if summary.len() < cfg.replicates / 2 {
        return 0.0;
    }
    let spread = summary.sample_std_dev();
    let range = metric.properties().range;
    let scale = if range.is_bounded() {
        range.width()
    } else {
        summary.mean().abs().max(1e-9)
    };
    // Map relative noise to [0, 1]: 0 noise → 1; noise at 10% of the range
    // → ~0.5.
    (1.0 / (1.0 + 10.0 * spread / scale)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_metrics::basic::{Accuracy, Recall};
    use vdbench_metrics::composite::DiagnosticOddsRatio;

    #[test]
    fn bounded_rate_metrics_are_stable_on_decent_workloads() {
        let cfg = AssessmentConfig::default();
        for m in [Box::new(Recall) as Box<dyn Metric>, Box::new(Accuracy)] {
            let s = score(m.as_ref(), &cfg);
            assert!(s > 0.6, "{} stability {s}", m.abbrev());
        }
    }

    #[test]
    fn unbounded_ratio_metrics_are_noisier() {
        let cfg = AssessmentConfig::default();
        let dor = score(&DiagnosticOddsRatio, &cfg);
        let recall = score(&Recall, &cfg);
        assert!(
            dor < recall,
            "odds ratios amplify noise: dor {dor} vs recall {recall}"
        );
    }

    #[test]
    fn stability_improves_with_workload_size() {
        let small = AssessmentConfig {
            workload_size: 50,
            ..AssessmentConfig::default()
        };
        let large = AssessmentConfig {
            workload_size: 5000,
            ..AssessmentConfig::default()
        };
        assert!(score(&Recall, &large) > score(&Recall, &small));
    }
}
