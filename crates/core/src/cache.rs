//! Campaign-level memoization: each expensive artifact is computed once —
//! per process **and**, with the disk tier enabled, per workspace.
//!
//! The table/figure binaries in `vdbench-bench` all draw from the same
//! expensive computations — the per-scenario case studies
//! ([`crate::campaign::run_case_study`]), the generic metric-attribute
//! assessment ([`crate::attributes::assess_catalog`]) and the raw
//! tool-on-corpus scans behind the extension studies
//! ([`vdbench_detectors::score_detector`]). Run stand-alone, each binary
//! recomputes them from scratch; run together (`run_all`), that is a 15×
//! waste; run *twice* (CI re-runs, golden-file checks, iterative artifact
//! work), even the memoized process pays the full scan bill again. This
//! module provides a **two-tier**, content-keyed cache:
//!
//! 1. **Memory tier** — process-wide maps of per-key [`OnceLock`] cells:
//!    concurrent requests for the *same* key block on one computation,
//!    requests for *different* keys proceed in parallel, hits are `Arc`
//!    pointer clones. Always on.
//! 2. **Disk tier** — an optional content-addressed store of
//!    serde-serialized result blobs (one JSON file per key, named
//!    `v{schema}-{kind}-{key:016x}.json`). Off by default in the library;
//!    `run_all` enables it at `target/vdbench-cache/` (override with
//!    `--cache-dir`, disable with `--no-disk-cache`). A memory-tier miss
//!    first consults the disk; only a miss in **both** tiers computes.
//!    Writes are atomic (unique tmp file + rename), reads are lock-free
//!    (plain `fs::read`, no file locking — the rename publishes complete
//!    blobs only), and any unreadable/corrupt/truncated blob is treated
//!    as a miss and overwritten by a fresh computation: the disk tier can
//!    *never* fail a campaign, only fail to accelerate it.
//!
//! # Keys
//!
//! * **Case studies** are keyed on `(scenario id, workload size,
//!   prevalence bits, seed, roster fingerprint, fault fingerprint)` —
//!   everything the report is a function of. The roster fingerprint
//!   hashes the tool names and metric identities of the standard campaign
//!   roster, so a change to [`crate::campaign::standard_tools`]
//!   invalidates the key instead of silently serving stale reports; the
//!   fault fingerprint (0 without fault injection) keeps degraded reports
//!   from aliasing clean ones — on disk too, so a `--fault-profile flaky`
//!   campaign never pollutes the clean entries it shares a workspace
//!   with.
//! * **Attribute assessments** are keyed on every field of
//!   [`AssessmentConfig`] plus a fingerprint of the assessed metric
//!   catalog.
//! * **Scans** ([`cached_scan`]) are keyed on `(tool fingerprint, corpus
//!   fingerprint, fault fingerprint)`. The tool fingerprint covers the
//!   tool's name *and* its full `Debug` configuration (budget, dictionary
//!   flags, operating-point rates, seeds …); the corpus fingerprint is a
//!   hash of the corpus' canonical JSON serialization — units, ground
//!   truth and generator seed.
//! * **Rendered artifacts** ([`cached_artifact`]) are keyed on `(artifact
//!   name, experiment seed, fault fingerprint)`: the final tier. An
//!   artifact's text is a pure function of the experiment seed (and the
//!   ambient fault configuration), so a warm campaign replays the exact
//!   bytes of the cold transcript without recomputing even the
//!   post-processing (bootstrap panels, rank statistics, chart layout)
//!   that sits *on top of* the cached intermediates. The intermediate
//!   kinds still earn their keep: they are shared across *different*
//!   artifacts within one cold run, across the stand-alone binaries, and
//!   they survive a schema-compatible change to a single artifact's
//!   rendering (only that artifact recomputes, its scans replay).
//!
//! Every disk key is additionally namespaced by [`CACHE_SCHEMA_VERSION`]
//! in the file name: bump it whenever the serialized layout *or the
//! semantics of a cached computation* change, and stale blobs from
//! earlier layouts are swept out (counted as `cache.disk.evictions`) the
//! next time the store is opened — the cache self-invalidates instead of
//! deserializing garbage.
//!
//! Hit/miss counters for all tiers feed the `run_all --timings`
//! instrumentation and the determinism regression tests; [`clear`] resets
//! the memory tier for tests that need cold-start behaviour (the disk
//! tier is left untouched — remove the directory, or point
//! [`set_disk_cache`] elsewhere, for a cold disk).

use crate::attributes::{assess_catalog, AssessmentConfig, AttributeAssessment};
use crate::benchmark::BenchmarkReport;
use crate::campaign;
use crate::error::Result;
use crate::scenario::{Scenario, ScenarioId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use vdbench_corpus::Corpus;
use vdbench_detectors::{score_detector, DetectionOutcome, Detector};
use vdbench_metrics::metric::Metric;
use vdbench_telemetry::registry::Counter;

/// Version of the on-disk blob layout **and** of the semantics of the
/// cached computations. Bump on any change to the serialized types, to
/// the scoring/benchmark pipeline, or to the scanner attack plans — files
/// written under other versions are evicted on store open, so a stale
/// workspace cache self-invalidates instead of replaying outdated
/// results.
///
/// v2: shard manifests moved from serde-JSON entry lists to the compact
/// binary codec in `scale`, and gained the `mhdr` digest-header kind.
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// 64-bit FNV-1a over a byte string, continuing from `state`.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a offset basis — the starting state for fingerprints.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// 64-bit FNV-1a of a byte string from the offset basis — the hash the
/// whole cache key space is built from, exposed so out-of-crate tiers
/// (the `vdbench-server` request canonicalizer) can key into the same
/// store without reimplementing the function.
#[must_use]
pub fn fnv1a_key(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Folds one little-endian `u64` word into an FNV-1a state — the
/// allocation-free building block for incremental key derivation (shard
/// manifest addresses, fingerprint digests) that would otherwise
/// round-trip every word through a temporary byte vector.
#[must_use]
pub fn fnv1a_fold_u64(state: u64, word: u64) -> u64 {
    fnv1a(state, &word.to_le_bytes())
}

/// Content fingerprint of a benchmark roster: tool names plus metric
/// identities, order-sensitive. Two rosters with the same fingerprint
/// produce the same [`BenchmarkReport`] on the same workload.
#[must_use]
pub fn roster_fingerprint(tools: &[Box<dyn Detector>], metrics: &[Box<dyn Metric>]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in tools {
        h = fnv1a(h, t.name().as_bytes());
        h = fnv1a(h, b"\x1f");
    }
    h = fnv1a(h, b"\x1e");
    h = fnv1a(h, metrics_fingerprint(metrics).to_le_bytes().as_slice());
    h
}

/// Content fingerprint of a metric catalog (identity + column label,
/// order-sensitive).
#[must_use]
pub fn metrics_fingerprint(metrics: &[Box<dyn Metric>]) -> u64 {
    let mut h = FNV_OFFSET;
    for m in metrics {
        h = fnv1a(h, format!("{:?}", m.id()).as_bytes());
        h = fnv1a(h, m.abbrev().as_bytes());
        h = fnv1a(h, b"\x1f");
    }
    h
}

/// Content fingerprint of one detection tool: its public name *and* its
/// full `Debug` configuration. Two [`ProfileTool`]s that share a display
/// name ("vendor-A") but differ in operating point or seed fingerprint
/// differently, so the scan cache never aliases them.
///
/// [`ProfileTool`]: vdbench_detectors::ProfileTool
#[must_use]
pub fn tool_fingerprint(tool: &dyn Detector) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, tool.name().as_bytes());
    h = fnv1a(h, b"\x1f");
    fnv1a(h, format!("{tool:?}").as_bytes())
}

/// Content fingerprint of a corpus: a hash of its canonical JSON
/// serialization — every unit's AST, every site's ground truth, and the
/// generator seed. Any generator change that alters the workload changes
/// the fingerprint.
#[must_use]
pub fn corpus_fingerprint(corpus: &Corpus) -> u64 {
    let json = serde_json::to_string(corpus).expect("corpus serializes");
    fnv1a(FNV_OFFSET, json.as_bytes())
}

/// Everything a standard case-study report is a function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CaseStudyKey {
    scenario: ScenarioId,
    workload_units: usize,
    prevalence_bits: u64,
    seed: u64,
    roster: u64,
    /// Fingerprint of the ambient fault-injection configuration — `0`
    /// when no faults are injected, so degraded reports never alias
    /// clean ones (see [`campaign::set_fault_injection`]).
    fault: u64,
}

impl CaseStudyKey {
    /// Stable content hash for the disk tier (explicit field folding —
    /// never `DefaultHasher`, whose output may change across releases).
    fn content_hash(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, format!("{:?}", self.scenario).as_bytes());
        for word in [
            self.workload_units as u64,
            self.prevalence_bits,
            self.seed,
            self.roster,
            self.fault,
        ] {
            h = fnv1a(h, &word.to_le_bytes());
        }
        h
    }
}

/// Everything a generic attribute assessment is a function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AssessmentKey {
    workload_size: u64,
    prevalence_bits: u64,
    tool_sample: usize,
    replicates: usize,
    seed: u64,
    metrics: u64,
}

impl AssessmentKey {
    /// Stable content hash for the disk tier.
    fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for word in [
            self.workload_size,
            self.prevalence_bits,
            self.tool_sample as u64,
            self.replicates as u64,
            self.seed,
            self.metrics,
        ] {
            h = fnv1a(h, &word.to_le_bytes());
        }
        h
    }
}

/// Everything one tool-on-corpus scan is a function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ScanKey {
    tool: u64,
    corpus: u64,
    fault: u64,
}

impl ScanKey {
    /// Stable content hash for the disk tier.
    fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for word in [self.tool, self.corpus, self.fault] {
            h = fnv1a(h, &word.to_le_bytes());
        }
        h
    }
}

type CaseCell = Arc<OnceLock<Result<Arc<BenchmarkReport>>>>;
type AssessCell = Arc<OnceLock<Arc<Vec<AttributeAssessment>>>>;
type ScanCell = Arc<OnceLock<Arc<DetectionOutcome>>>;

static CASE_STUDIES: OnceLock<Mutex<HashMap<CaseStudyKey, CaseCell>>> = OnceLock::new();
static ASSESSMENTS: OnceLock<Mutex<HashMap<AssessmentKey, AssessCell>>> = OnceLock::new();
static SCANS: OnceLock<Mutex<HashMap<ScanKey, ScanCell>>> = OnceLock::new();

/// The hit/miss counters live on the process-wide telemetry
/// [`registry`](vdbench_telemetry::registry): they show up in every
/// metrics snapshot (`--timings`, the JSON report) for free, and the
/// per-handle [`OnceLock`]s keep the hot path at one relaxed atomic add
/// after the first resolution.
struct CacheCounters {
    case_hits: Arc<Counter>,
    case_misses: Arc<Counter>,
    assess_hits: Arc<Counter>,
    assess_misses: Arc<Counter>,
    scan_hits: Arc<Counter>,
    scan_misses: Arc<Counter>,
    artifact_hits: Arc<Counter>,
    artifact_misses: Arc<Counter>,
    disk_hits: Arc<Counter>,
    disk_misses: Arc<Counter>,
    disk_writes: Arc<Counter>,
    disk_evictions: Arc<Counter>,
}

fn counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = vdbench_telemetry::registry::global();
        CacheCounters {
            case_hits: reg.counter("cache.case_study.hits"),
            case_misses: reg.counter("cache.case_study.misses"),
            assess_hits: reg.counter("cache.assessment.hits"),
            assess_misses: reg.counter("cache.assessment.misses"),
            scan_hits: reg.counter("cache.scan.hits"),
            scan_misses: reg.counter("cache.scan.misses"),
            artifact_hits: reg.counter("cache.artifact.hits"),
            artifact_misses: reg.counter("cache.artifact.misses"),
            disk_hits: reg.counter("cache.disk.hits"),
            disk_misses: reg.counter("cache.disk.misses"),
            disk_writes: reg.counter("cache.disk.writes"),
            disk_evictions: reg.counter("cache.disk.evictions"),
        }
    })
}

fn case_map() -> &'static Mutex<HashMap<CaseStudyKey, CaseCell>> {
    CASE_STUDIES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn assess_map() -> &'static Mutex<HashMap<AssessmentKey, AssessCell>> {
    ASSESSMENTS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn scan_map() -> &'static Mutex<HashMap<ScanKey, ScanCell>> {
    SCANS.get_or_init(|| Mutex::new(HashMap::new()))
}

// ---------------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------------

/// The configured disk-store directory (`None` = disk tier off, the
/// library default).
fn disk_config() -> &'static RwLock<Option<PathBuf>> {
    static DIR: OnceLock<RwLock<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| RwLock::new(None))
}

/// Monotonic discriminator for tmp-file names: concurrent writers in one
/// process never collide even on the same key.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Points the disk tier at `dir` (`None` disables it). Opening a store
/// creates the directory and sweeps out blobs written under a different
/// [`CACHE_SCHEMA_VERSION`] (and abandoned tmp files), counting them as
/// `cache.disk.evictions`. If the directory cannot be created the disk
/// tier stays off — a read-only workspace degrades to the memory tier,
/// never to an error.
pub fn set_disk_cache(dir: Option<PathBuf>) {
    let resolved = dir.and_then(|d| {
        if std::fs::create_dir_all(&d).is_err() {
            return None;
        }
        sweep_stale_blobs(&d);
        Some(d)
    });
    *disk_config().write().expect("disk cache config poisoned") = resolved;
}

/// The active disk-store directory, if the tier is enabled.
#[must_use]
pub fn disk_cache_dir() -> Option<PathBuf> {
    disk_config()
        .read()
        .expect("disk cache config poisoned")
        .clone()
}

/// File extensions the store recognizes as blobs: serde-JSON values and
/// raw byte blobs (the compact shard-manifest codec).
const BLOB_EXTENSIONS: [&str; 2] = [".json", ".bin"];

/// Whether a store file name is a blob of either codec.
fn is_blob_name(name: &str) -> bool {
    BLOB_EXTENSIONS.iter().any(|ext| name.ends_with(ext))
}

/// Deletes blobs from other schema versions and abandoned tmp files.
fn sweep_stale_blobs(dir: &Path) {
    let current = format!("v{CACHE_SCHEMA_VERSION}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_blob = is_blob_name(name) && !name.starts_with(&current);
        let abandoned_tmp = name.contains(".tmp-");
        if (stale_blob || abandoned_tmp) && std::fs::remove_file(entry.path()).is_ok() {
            counters().disk_evictions.inc();
        }
    }
}

/// Blob path for a `(kind, key hash)` pair under the current schema.
fn blob_path(dir: &Path, kind: &str, key: u64) -> PathBuf {
    dir.join(format!("v{CACHE_SCHEMA_VERSION}-{kind}-{key:016x}.json"))
}

/// Byte-blob path for a `(kind, key hash)` pair under the current schema.
fn bytes_blob_path(dir: &Path, kind: &str, key: u64) -> PathBuf {
    dir.join(format!("v{CACHE_SCHEMA_VERSION}-{kind}-{key:016x}.bin"))
}

/// Reads and deserializes a blob. Every failure mode — missing file,
/// unreadable file, truncated or corrupt JSON, layout drift — is a miss:
/// the caller recomputes and overwrites. Counts `cache.disk.hits` /
/// `cache.disk.misses`.
pub(crate) fn disk_get<T: serde::de::DeserializeOwned>(kind: &str, key: u64) -> Option<T> {
    let dir = disk_cache_dir()?;
    let path = blob_path(&dir, kind, key);
    let value = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    if value.is_some() {
        counters().disk_hits.inc();
    } else {
        counters().disk_misses.inc();
    }
    value
}

/// Serializes and atomically publishes a blob: write to a unique tmp file
/// in the store directory, then `rename` into place — readers only ever
/// observe complete blobs. I/O failures are silently dropped (the value
/// stays in the memory tier). Counts `cache.disk.writes`.
pub(crate) fn disk_put<T: serde::Serialize + ?Sized>(kind: &str, key: u64, value: &T) {
    let Some(dir) = disk_cache_dir() else { return };
    let path = blob_path(&dir, kind, key);
    let json = match serde_json::to_string(value) {
        Ok(j) => j,
        Err(_) => return,
    };
    publish_blob(&dir, &path, key, json.as_bytes());
}

/// Atomic tmp-file + rename publication shared by both blob codecs.
fn publish_blob(dir: &Path, path: &Path, key: u64, contents: &[u8]) {
    let tmp = dir.join(format!(
        "{:016x}.tmp-{}-{}",
        key,
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::write(&tmp, contents).is_ok() && std::fs::rename(&tmp, path).is_ok() {
        counters().disk_writes.inc();
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Reads a raw byte blob published under `(kind, key)`. Same miss
/// semantics as `disk_get` — missing or unreadable files are misses,
/// never errors — but the contents are handed to the caller undecoded:
/// the shard-manifest codec in `scale` validates them itself, and any
/// malformed payload likewise degrades to a rescan. Counts
/// `cache.disk.hits` / `cache.disk.misses`.
#[must_use]
pub fn bytes_blob_get(kind: &str, key: u64) -> Option<Vec<u8>> {
    let dir = disk_cache_dir()?;
    let path = bytes_blob_path(&dir, kind, key);
    let value = std::fs::read(&path).ok();
    if value.is_some() {
        counters().disk_hits.inc();
    } else {
        counters().disk_misses.inc();
    }
    value
}

/// Atomically publishes a raw byte blob under `(kind, key)` — the
/// non-JSON sibling of `disk_put`, stored with a `.bin` extension so
/// the sweep/inventory/gc passes classify it like any other blob. A
/// no-op with the disk tier off. Counts `cache.disk.writes`.
pub fn bytes_blob_put(kind: &str, key: u64, bytes: &[u8]) {
    let Some(dir) = disk_cache_dir() else { return };
    let path = bytes_blob_path(&dir, kind, key);
    publish_blob(&dir, &path, key, bytes);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Snapshot of the cache hit/miss counters, all tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Case-study requests served from the memory tier.
    pub case_study_hits: u64,
    /// Case-study requests that missed the memory tier.
    pub case_study_misses: u64,
    /// Assessment requests served from the memory tier.
    pub assessment_hits: u64,
    /// Assessment requests that missed the memory tier.
    pub assessment_misses: u64,
    /// Scan requests served from the memory tier.
    pub scan_hits: u64,
    /// Scan requests that missed the memory tier.
    pub scan_misses: u64,
    /// Rendered artifacts replayed from the disk store.
    pub artifact_hits: u64,
    /// Rendered artifacts that had to be computed.
    pub artifact_misses: u64,
    /// Memory-tier misses that the disk tier answered.
    pub disk_hits: u64,
    /// Memory-tier misses the disk tier could not answer (the value was
    /// computed).
    pub disk_misses: u64,
    /// Blobs atomically published to the disk store.
    pub disk_writes: u64,
    /// Stale-schema blobs (and abandoned tmp files) swept on store open.
    pub disk_evictions: u64,
}

impl CacheStats {
    /// Total requests served from the memory tier.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.case_study_hits + self.assessment_hits + self.scan_hits
    }

    /// Total requests that missed the memory tier (of which `disk_hits`
    /// were then served from disk and `disk_misses` computed).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.case_study_misses + self.assessment_misses + self.scan_misses
    }
}

/// Current hit/miss counters (process-wide, monotonic until
/// [`reset_stats`] or [`clear`]).
#[must_use]
pub fn stats() -> CacheStats {
    let c = counters();
    CacheStats {
        case_study_hits: c.case_hits.get(),
        case_study_misses: c.case_misses.get(),
        assessment_hits: c.assess_hits.get(),
        assessment_misses: c.assess_misses.get(),
        scan_hits: c.scan_hits.get(),
        scan_misses: c.scan_misses.get(),
        artifact_hits: c.artifact_hits.get(),
        artifact_misses: c.artifact_misses.get(),
        disk_hits: c.disk_hits.get(),
        disk_misses: c.disk_misses.get(),
        disk_writes: c.disk_writes.get(),
        disk_evictions: c.disk_evictions.get(),
    }
}

/// Zeroes the hit/miss counters without touching the cached entries.
///
/// Tests that assert on *absolute* counter deltas (rather than `≥`
/// inequalities tolerant of sibling-test traffic) call this immediately
/// before the section under observation, so the assertion no longer
/// depends on what ran earlier in the process.
pub fn reset_stats() {
    let c = counters();
    c.case_hits.reset();
    c.case_misses.reset();
    c.assess_hits.reset();
    c.assess_misses.reset();
    c.scan_hits.reset();
    c.scan_misses.reset();
    c.artifact_hits.reset();
    c.artifact_misses.reset();
    c.disk_hits.reset();
    c.disk_misses.reset();
    c.disk_writes.reset();
    c.disk_evictions.reset();
}

/// Empties the memory tier and zeroes the counters (for tests and
/// benchmarks that need cold-start behaviour). In-flight computations
/// finish on their own cells and are simply not retained. The **disk**
/// tier is deliberately untouched: that is the whole point of a
/// persistent store — tests that need a cold disk remove the directory or
/// point [`set_disk_cache`] elsewhere.
pub fn clear() {
    case_map().lock().expect("campaign cache poisoned").clear();
    assess_map()
        .lock()
        .expect("campaign cache poisoned")
        .clear();
    scan_map().lock().expect("campaign cache poisoned").clear();
    reset_stats();
}

// ---------------------------------------------------------------------------
// Cached computations
// ---------------------------------------------------------------------------

/// Memoized [`campaign::run_case_study`]: the standard case study for a
/// scenario, computed at most once per `(scenario, seed, roster, fault)`
/// per process — and, with the disk tier enabled, at most once per
/// workspace — and shared behind an [`Arc`].
///
/// # Errors
///
/// Propagates (and caches) benchmark configuration errors — impossible
/// with the standard roster. Errors are never written to disk.
pub fn cached_case_study(scenario: &Scenario, seed: u64) -> Result<Arc<BenchmarkReport>> {
    let key = CaseStudyKey {
        scenario: scenario.id,
        workload_units: scenario.workload_units,
        prevalence_bits: scenario.typical_prevalence.to_bits(),
        seed,
        roster: roster_fingerprint(
            &campaign::standard_tools(seed),
            &campaign::standard_metrics(),
        ),
        fault: campaign::fault_injection().map_or(0, |c| c.fingerprint()),
    };
    let cell = {
        let mut map = case_map().lock().expect("campaign cache poisoned");
        map.entry(key).or_default().clone()
    };
    let mut computed = false;
    let result = cell.get_or_init(|| {
        computed = true;
        let hash = key.content_hash();
        if let Some(report) = disk_get::<BenchmarkReport>("case", hash) {
            return Ok(Arc::new(report));
        }
        let fresh = campaign::run_case_study(scenario, seed).map(Arc::new);
        if let Ok(report) = &fresh {
            disk_put("case", hash, report.as_ref());
        }
        fresh
    });
    if computed {
        counters().case_misses.inc();
    } else {
        counters().case_hits.inc();
    }
    result.clone()
}

/// Memoized [`assess_catalog`]: the generic attribute sheets for a metric
/// catalog under a configuration, computed at most once per process (per
/// workspace with the disk tier) and shared behind an [`Arc`].
#[must_use]
pub fn cached_assessment(
    metrics: &[Box<dyn Metric>],
    cfg: &AssessmentConfig,
) -> Arc<Vec<AttributeAssessment>> {
    let key = AssessmentKey {
        workload_size: cfg.workload_size,
        prevalence_bits: cfg.reference_prevalence.to_bits(),
        tool_sample: cfg.tool_sample,
        replicates: cfg.replicates,
        seed: cfg.seed,
        metrics: metrics_fingerprint(metrics),
    };
    let cell = {
        let mut map = assess_map().lock().expect("campaign cache poisoned");
        map.entry(key).or_default().clone()
    };
    let mut computed = false;
    let sheets = cell.get_or_init(|| {
        computed = true;
        let hash = key.content_hash();
        if let Some(sheets) = disk_get::<Vec<AttributeAssessment>>("assess", hash) {
            return Arc::new(sheets);
        }
        let fresh = Arc::new(assess_catalog(metrics, cfg));
        disk_put("assess", hash, fresh.as_ref());
        fresh
    });
    if computed {
        counters().assess_misses.inc();
    } else {
        counters().assess_hits.inc();
    }
    sheets.clone()
}

/// Memoized [`score_detector`]: one tool scanned over one corpus, keyed
/// on the tool's full configuration, the corpus content and the ambient
/// fault fingerprint. This is the cache behind the scan-heavy extension
/// artifacts (tables 7–9, figures 5–6): within a process, repeated scans
/// of the same `(tool, corpus)` are `Arc` clones; across processes, the
/// disk tier replays the serialized [`DetectionOutcome`] instead of
/// re-executing hundreds of attack sessions.
#[must_use]
pub fn cached_scan(tool: &dyn Detector, corpus: &Corpus) -> Arc<DetectionOutcome> {
    let key = ScanKey {
        tool: tool_fingerprint(tool),
        corpus: corpus_fingerprint(corpus),
        fault: campaign::fault_injection().map_or(0, |c| c.fingerprint()),
    };
    let cell = {
        let mut map = scan_map().lock().expect("campaign cache poisoned");
        map.entry(key).or_default().clone()
    };
    let mut computed = false;
    let outcome = cell.get_or_init(|| {
        computed = true;
        let hash = key.content_hash();
        if let Some(outcome) = disk_get::<DetectionOutcome>("scan", hash) {
            return Arc::new(outcome);
        }
        let fresh = Arc::new(score_detector(tool, corpus));
        disk_put("scan", hash, fresh.as_ref());
        fresh
    });
    if computed {
        counters().scan_misses.inc();
    } else {
        counters().scan_hits.inc();
    }
    outcome.clone()
}

/// Memoized artifact rendering — the final, coarsest cache tier.
///
/// A campaign artifact (one table or figure) is a pure function of its
/// `name`, the experiment `seed` and the ambient fault configuration, so
/// its rendered text can be replayed byte-for-byte from the disk store.
/// This is what makes a warm `run_all` fast end to end: the intermediate
/// tiers remove the *scans*, this tier also removes the post-processing
/// (bootstrap panels, rank statistics, chart layout) computed on top of
/// them. The JSON string codec is lossless for every Rust string
/// (control characters escaped, UTF-8 passed through), so a replayed
/// artifact is byte-identical to a recomputed one — the property the
/// golden-transcript CI check enforces.
///
/// With the disk tier off this is a plain call to `render` (plus a
/// `cache.artifact.misses` tick); there is deliberately no memory tier —
/// each artifact renders at most once per process anyway.
pub fn cached_artifact(name: &str, seed: u64, render: impl FnOnce() -> String) -> String {
    let h = artifact_key(name, seed);
    if let Some(text) = disk_get::<String>("art", h) {
        counters().artifact_hits.inc();
        return text;
    }
    counters().artifact_misses.inc();
    let text = render();
    disk_put("art", h, &text);
    text
}

/// The disk-store key of one rendered artifact: `(name, seed, ambient
/// fault fingerprint)` folded through FNV-1a — exactly the key
/// [`cached_artifact`] files its blob under. Exposed so the campaign
/// service can probe the store for a warm artifact (kind `"art"`) without
/// holding the renderer.
#[must_use]
pub fn artifact_key(name: &str, seed: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, name.as_bytes());
    h = fnv1a(h, b"\x1f");
    h = fnv1a(h, &seed.to_le_bytes());
    let fault = campaign::fault_injection().map_or(0, |c| c.fingerprint());
    fnv1a(h, &fault.to_le_bytes())
}

/// Reads a raw string blob published under `(kind, key)` from the disk
/// tier, if the tier is enabled and holds a complete, well-formed blob.
/// This is the warm path of the campaign service: a hit is one
/// `fs::read` plus a JSON string decode, no computation. Counts
/// `cache.disk.hits` / `cache.disk.misses` like every other disk read.
#[must_use]
pub fn raw_blob_get(kind: &str, key: u64) -> Option<String> {
    disk_get::<String>(kind, key)
}

/// Atomically publishes a raw string blob under `(kind, key)`: unique
/// tmp file + rename, so concurrent readers only ever observe complete
/// blobs and a crash mid-write leaves at worst an abandoned tmp file
/// (swept on the next store open). A no-op with the disk tier off.
pub fn raw_blob_put(kind: &str, key: u64, text: &str) {
    disk_put(kind, key, text);
}

// ---------------------------------------------------------------------------
// Store inventory & on-demand GC (`vdbench cache`)
// ---------------------------------------------------------------------------

/// Per-kind blob census of one store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlobInventory {
    /// `(count, bytes)` per blob kind (`case`, `scan`, `art`, `manifest`,
    /// `srv-scan`, …), current schema version only, sorted by kind.
    pub kinds: std::collections::BTreeMap<String, (u64, u64)>,
    /// `(count, bytes)` of blobs written under other schema versions.
    pub stale: (u64, u64),
    /// `(count, bytes)` of abandoned tmp files (crashed mid-publish).
    pub tmp: (u64, u64),
}

impl BlobInventory {
    /// Total live blobs (current schema) across all kinds.
    #[must_use]
    pub fn live_count(&self) -> u64 {
        self.kinds.values().map(|(n, _)| n).sum()
    }

    /// Total live-blob bytes across all kinds.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.kinds.values().map(|(_, b)| b).sum()
    }
}

/// Walks a store directory and classifies every file by kind, without
/// touching the ambient disk-tier configuration (unlike
/// [`set_disk_cache`], which sweeps on open — this is a read-only
/// census, so `vdbench cache stats` can report *before* any sweeping).
#[must_use]
pub fn blob_inventory_in(dir: &Path) -> BlobInventory {
    let mut inv = BlobInventory::default();
    let current = format!("v{CACHE_SCHEMA_VERSION}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return inv;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        if name.contains(".tmp-") {
            inv.tmp.0 += 1;
            inv.tmp.1 += bytes;
            continue;
        }
        if !is_blob_name(name) {
            continue;
        }
        let Some(stem) = name.strip_prefix(&current).map(|s| {
            BLOB_EXTENSIONS
                .iter()
                .find_map(|ext| s.strip_suffix(ext))
                .unwrap_or(s)
        }) else {
            inv.stale.0 += 1;
            inv.stale.1 += bytes;
            continue;
        };
        // `{kind}-{key:016x}` — the kind itself may contain dashes
        // ("srv-scan"), so split at the *last* one.
        let kind = stem.rsplit_once('-').map_or(stem, |(k, _)| k);
        let slot = inv.kinds.entry(kind.to_string()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += bytes;
    }
    inv
}

/// Sweeps stale-schema blobs and abandoned tmp files out of `dir` on
/// demand, returning `(files removed, bytes reclaimed)`. The same policy
/// [`set_disk_cache`] applies on store open, exposed separately so
/// `vdbench cache gc` can clean a store it never opens for computation.
/// Removals are counted as `cache.disk.evictions`.
pub fn gc_dir(dir: &Path) -> (u64, u64) {
    let current = format!("v{CACHE_SCHEMA_VERSION}-");
    let mut removed = (0u64, 0u64);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return removed;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_blob = is_blob_name(name) && !name.starts_with(&current);
        let abandoned_tmp = name.contains(".tmp-");
        if !(stale_blob || abandoned_tmp) {
            continue;
        }
        let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(entry.path()).is_ok() {
            counters().disk_evictions.inc();
            removed.0 += 1;
            removed.1 += bytes;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{standard_scenarios, Scenario, ScenarioId};
    use crate::selection::default_candidates;
    use vdbench_corpus::CorpusBuilder;
    use vdbench_detectors::DynamicScanner;

    /// Serializes the tests in this module: [`clear`] must not run while a
    /// sibling test is asserting `Arc::ptr_eq` on live entries, and the
    /// disk-tier configuration is process-global.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("cache test lock poisoned")
    }

    fn quick_cfg(seed: u64) -> AssessmentConfig {
        AssessmentConfig {
            workload_size: 60,
            reference_prevalence: 0.2,
            tool_sample: 10,
            replicates: 20,
            seed,
        }
    }

    #[test]
    fn assessment_cache_hits_on_repeat_and_distinguishes_configs() {
        let _guard = test_lock();
        let catalog = default_candidates();
        // Unique seeds so other tests in the binary cannot collide with
        // the per-key behaviour under observation.
        let cfg_a = quick_cfg(0x00CA_C4EA);
        let cfg_b = quick_cfg(0x00CA_C4EB);
        let before = stats();
        let first = cached_assessment(&catalog, &cfg_a);
        let second = cached_assessment(&catalog, &cfg_a);
        assert!(Arc::ptr_eq(&first, &second), "repeat must share the Arc");
        let other = cached_assessment(&catalog, &cfg_b);
        assert!(!Arc::ptr_eq(&first, &other), "different seed, new entry");
        let after = stats();
        // ≥ rather than ==: unrelated tests in this binary may also use
        // the (process-global) cache concurrently.
        assert!(after.assessment_misses >= before.assessment_misses + 2);
        assert!(after.assessment_hits > before.assessment_hits);
        // The cached sheets match a direct computation exactly.
        assert_eq!(*first, assess_catalog(&catalog, &cfg_a));
    }

    #[test]
    fn case_study_cache_is_keyed_on_workload_shape() {
        let _guard = test_lock();
        let mut scenario = Scenario::standard(ScenarioId::S1Audit);
        scenario.workload_units = 40;
        let seed = 0x00CA_C4EC;
        let first = cached_case_study(&scenario, seed).unwrap();
        let again = cached_case_study(&scenario, seed).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        // A different workload size is a different key.
        scenario.workload_units = 44;
        let other = cached_case_study(&scenario, seed).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert!(
            other.outcomes()[0].records().len() > first.outcomes()[0].records().len(),
            "larger workload, more cases"
        );
    }

    #[test]
    fn scan_cache_distinguishes_tools_and_corpora() {
        let _guard = test_lock();
        let corpus_a = CorpusBuilder::new().units(20).seed(0x5CAA).build();
        let corpus_b = CorpusBuilder::new().units(20).seed(0x5CAB).build();
        let quick = DynamicScanner::quick();
        let first = cached_scan(&quick, &corpus_a);
        let again = cached_scan(&quick, &corpus_a);
        assert!(Arc::ptr_eq(&first, &again), "repeat scan must share");
        let other_corpus = cached_scan(&quick, &corpus_b);
        assert!(!Arc::ptr_eq(&first, &other_corpus));
        let other_tool = cached_scan(&DynamicScanner::thorough(), &corpus_a);
        assert!(!Arc::ptr_eq(&first, &other_tool));
        // The cached outcome matches a direct scan exactly.
        assert_eq!(*first, score_detector(&quick, &corpus_a));
    }

    #[test]
    fn fingerprints_are_order_sensitive() {
        let catalog = default_candidates();
        let mut reversed = default_candidates();
        reversed.reverse();
        assert_ne!(
            metrics_fingerprint(&catalog),
            metrics_fingerprint(&reversed)
        );
        let tools = campaign::standard_tools(1);
        let fp1 = roster_fingerprint(&tools, &catalog);
        let fp2 = roster_fingerprint(&campaign::standard_tools(1), &catalog);
        assert_eq!(fp1, fp2, "fingerprint is content-based, not identity-based");
        assert_ne!(fp1, roster_fingerprint(&tools, &reversed));
    }

    #[test]
    fn tool_fingerprint_sees_configuration_not_just_name() {
        use vdbench_detectors::ProfileTool;
        let a = ProfileTool::new("vendor-A", 0.8, 0.05, 7);
        let b = ProfileTool::new("vendor-A", 0.9, 0.05, 7);
        let c = ProfileTool::new("vendor-A", 0.8, 0.05, 8);
        assert_ne!(
            tool_fingerprint(&a),
            tool_fingerprint(&b),
            "same display name, different operating point"
        );
        assert_ne!(
            tool_fingerprint(&a),
            tool_fingerprint(&c),
            "same display name, different seed"
        );
        assert_eq!(
            tool_fingerprint(&a),
            tool_fingerprint(&ProfileTool::new("vendor-A", 0.8, 0.05, 7)),
            "content-based, not identity-based"
        );
    }

    #[test]
    fn corpus_fingerprint_tracks_content() {
        let a = CorpusBuilder::new().units(10).seed(1).build();
        let b = CorpusBuilder::new().units(10).seed(2).build();
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&a.clone()));
    }

    #[test]
    fn artifact_tier_is_passthrough_without_disk() {
        let _guard = test_lock();
        assert!(
            disk_cache_dir().is_none(),
            "library default must leave the disk tier off"
        );
        let before = stats();
        let text = cached_artifact("unit-test-artifact", 0xA47, || "α\tβ\nγ".to_string());
        assert_eq!(text, "α\tβ\nγ");
        let after = stats();
        assert_eq!(after.artifact_misses, before.artifact_misses + 1);
        assert_eq!(after.artifact_hits, before.artifact_hits);
        // Without a store there is no disk traffic at all.
        assert_eq!(after.disk_hits, before.disk_hits);
        assert_eq!(after.disk_misses, before.disk_misses);
        assert_eq!(after.disk_writes, before.disk_writes);
    }

    #[test]
    fn inventory_and_gc_classify_the_store() {
        let _guard = test_lock();
        let dir = std::env::temp_dir().join(format!("vdbench-cache-inv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let live_scan = blob_path(&dir, "scan", 0x1);
        let live_srv = blob_path(&dir, "srv-scan", 0x2);
        let live_manifest = bytes_blob_path(&dir, "manifest", 0x5);
        std::fs::write(&live_scan, "\"x\"").unwrap();
        std::fs::write(&live_srv, "\"yy\"").unwrap();
        std::fs::write(&live_manifest, [0u8, 1, 2, 3, 4]).unwrap();
        std::fs::write(dir.join("v0-scan-0000000000000003.json"), "old").unwrap();
        std::fs::write(dir.join("v0-manifest-0000000000000006.bin"), "oldbin").unwrap();
        std::fs::write(dir.join("0000000000000004.tmp-1-0"), "half").unwrap();
        let inv = blob_inventory_in(&dir);
        assert_eq!(inv.kinds["scan"], (1, 3));
        assert_eq!(inv.kinds["srv-scan"], (1, 4));
        assert_eq!(inv.kinds["manifest"], (1, 5));
        assert_eq!(inv.live_count(), 3);
        assert_eq!(inv.live_bytes(), 12);
        assert_eq!(inv.stale.0, 2, "stale .bin blobs classify like .json");
        assert_eq!(inv.tmp.0, 1);
        let (files, bytes) = gc_dir(&dir);
        assert_eq!(files, 3);
        assert!(bytes > 0);
        let after = blob_inventory_in(&dir);
        assert_eq!(after.stale, (0, 0));
        assert_eq!(after.tmp, (0, 0));
        assert_eq!(after.live_count(), 3, "gc never touches live blobs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bytes_blobs_roundtrip_and_miss_without_store() {
        let _guard = test_lock();
        assert_eq!(bytes_blob_get("manifest", 0xB17), None, "disk tier off");
        bytes_blob_put("manifest", 0xB17, b"dropped"); // no-op without a store
        let dir = std::env::temp_dir().join(format!("vdbench-cache-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        set_disk_cache(Some(dir.clone()));
        assert_eq!(bytes_blob_get("manifest", 0xB17), None, "cold store");
        let payload: Vec<u8> = (0u8..=255).collect();
        bytes_blob_put("manifest", 0xB17, &payload);
        assert_eq!(
            bytes_blob_get("manifest", 0xB17).as_deref(),
            Some(&payload[..])
        );
        // Stale-schema byte blobs are swept on the next store open.
        std::fs::write(dir.join("v0-manifest-00000000000000aa.bin"), "stale").unwrap();
        set_disk_cache(Some(dir.clone()));
        let inv = blob_inventory_in(&dir);
        assert_eq!(inv.stale, (0, 0));
        assert_eq!(inv.kinds["manifest"], (1, 256));
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_fold_u64_matches_byte_folding() {
        let h0 = fnv1a_key(b"manifest-v2");
        let folded = fnv1a_fold_u64(h0, 0xDEAD_BEEF_0BAD_F00D);
        let byted = fnv1a(h0, &0xDEAD_BEEF_0BAD_F00Du64.to_le_bytes());
        assert_eq!(folded, byted);
        assert_ne!(folded, fnv1a_fold_u64(h0, 0xDEAD_BEEF_0BAD_F00E));
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let _guard = test_lock();
        let _ = standard_scenarios();
        clear();
        let s = stats();
        assert_eq!(s, CacheStats::default());
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 0);
    }
}
