//! Campaign-level memoization: each expensive artifact is computed once.
//!
//! The table/figure binaries in `vdbench-bench` all draw from the same two
//! expensive computations — the per-scenario case studies
//! ([`crate::campaign::run_case_study`]) and the generic metric-attribute
//! assessment ([`crate::attributes::assess_catalog`]). Run stand-alone,
//! each binary recomputes them from scratch; run together (`run_all`),
//! that is a 15× waste. This module provides process-wide, content-keyed
//! memoization so every consumer in the process shares one copy of each
//! result:
//!
//! * **Case studies** are keyed on `(scenario id, workload size,
//!   prevalence bits, seed, roster fingerprint, fault fingerprint)` —
//!   everything the report is a function of. The roster fingerprint
//!   hashes the tool names and metric identities of the standard campaign
//!   roster, so a change to [`crate::campaign::standard_tools`]
//!   invalidates the key instead of silently serving stale reports; the
//!   fault fingerprint (0 without fault injection) keeps degraded reports
//!   from aliasing clean ones.
//! * **Attribute assessments** are keyed on every field of
//!   [`AssessmentConfig`] plus a fingerprint of the assessed metric
//!   catalog.
//!
//! Values are stored behind [`Arc`], so cache hits are pointer clones.
//! Each map entry is a per-key [`OnceLock`] cell: concurrent requests for
//! the *same* key block on one computation (each case study is computed
//! exactly once per process), while requests for *different* keys proceed
//! in parallel — the global map mutex is only held for the entry lookup,
//! never during computation.
//!
//! Hit/miss counters feed the `run_all --timings` instrumentation and the
//! determinism regression tests; [`clear`] resets the whole cache for
//! tests that need cold-start behaviour.

use crate::attributes::{assess_catalog, AssessmentConfig, AttributeAssessment};
use crate::benchmark::BenchmarkReport;
use crate::campaign;
use crate::error::Result;
use crate::scenario::{Scenario, ScenarioId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use vdbench_detectors::Detector;
use vdbench_metrics::metric::Metric;
use vdbench_telemetry::registry::Counter;

/// 64-bit FNV-1a over a byte string, continuing from `state`.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a offset basis — the starting state for fingerprints.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Content fingerprint of a benchmark roster: tool names plus metric
/// identities, order-sensitive. Two rosters with the same fingerprint
/// produce the same [`BenchmarkReport`] on the same workload.
#[must_use]
pub fn roster_fingerprint(tools: &[Box<dyn Detector>], metrics: &[Box<dyn Metric>]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in tools {
        h = fnv1a(h, t.name().as_bytes());
        h = fnv1a(h, b"\x1f");
    }
    h = fnv1a(h, b"\x1e");
    h = fnv1a(h, metrics_fingerprint(metrics).to_le_bytes().as_slice());
    h
}

/// Content fingerprint of a metric catalog (identity + column label,
/// order-sensitive).
#[must_use]
pub fn metrics_fingerprint(metrics: &[Box<dyn Metric>]) -> u64 {
    let mut h = FNV_OFFSET;
    for m in metrics {
        h = fnv1a(h, format!("{:?}", m.id()).as_bytes());
        h = fnv1a(h, m.abbrev().as_bytes());
        h = fnv1a(h, b"\x1f");
    }
    h
}

/// Everything a standard case-study report is a function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CaseStudyKey {
    scenario: ScenarioId,
    workload_units: usize,
    prevalence_bits: u64,
    seed: u64,
    roster: u64,
    /// Fingerprint of the ambient fault-injection configuration — `0`
    /// when no faults are injected, so degraded reports never alias
    /// clean ones (see [`campaign::set_fault_injection`]).
    fault: u64,
}

/// Everything a generic attribute assessment is a function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AssessmentKey {
    workload_size: u64,
    prevalence_bits: u64,
    tool_sample: usize,
    replicates: usize,
    seed: u64,
    metrics: u64,
}

type CaseCell = Arc<OnceLock<Result<Arc<BenchmarkReport>>>>;
type AssessCell = Arc<OnceLock<Arc<Vec<AttributeAssessment>>>>;

static CASE_STUDIES: OnceLock<Mutex<HashMap<CaseStudyKey, CaseCell>>> = OnceLock::new();
static ASSESSMENTS: OnceLock<Mutex<HashMap<AssessmentKey, AssessCell>>> = OnceLock::new();

/// The four hit/miss counters live on the process-wide telemetry
/// [`registry`](vdbench_telemetry::registry): they show up in every
/// metrics snapshot (`--timings`, the JSON report) for free, and the
/// per-handle [`OnceLock`]s keep the hot path at one relaxed atomic add
/// after the first resolution.
struct CacheCounters {
    case_hits: Arc<Counter>,
    case_misses: Arc<Counter>,
    assess_hits: Arc<Counter>,
    assess_misses: Arc<Counter>,
}

fn counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = vdbench_telemetry::registry::global();
        CacheCounters {
            case_hits: reg.counter("cache.case_study.hits"),
            case_misses: reg.counter("cache.case_study.misses"),
            assess_hits: reg.counter("cache.assessment.hits"),
            assess_misses: reg.counter("cache.assessment.misses"),
        }
    })
}

fn case_map() -> &'static Mutex<HashMap<CaseStudyKey, CaseCell>> {
    CASE_STUDIES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn assess_map() -> &'static Mutex<HashMap<AssessmentKey, AssessCell>> {
    ASSESSMENTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Snapshot of the cache hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Case-study requests served from the cache.
    pub case_study_hits: u64,
    /// Case-study requests that ran the benchmark.
    pub case_study_misses: u64,
    /// Assessment requests served from the cache.
    pub assessment_hits: u64,
    /// Assessment requests that ran the simulations.
    pub assessment_misses: u64,
}

impl CacheStats {
    /// Total requests served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.case_study_hits + self.assessment_hits
    }

    /// Total requests that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.case_study_misses + self.assessment_misses
    }
}

/// Current hit/miss counters (process-wide, monotonic until
/// [`reset_stats`] or [`clear`]).
#[must_use]
pub fn stats() -> CacheStats {
    let c = counters();
    CacheStats {
        case_study_hits: c.case_hits.get(),
        case_study_misses: c.case_misses.get(),
        assessment_hits: c.assess_hits.get(),
        assessment_misses: c.assess_misses.get(),
    }
}

/// Zeroes the hit/miss counters without touching the cached entries.
///
/// Tests that assert on *absolute* counter deltas (rather than `≥`
/// inequalities tolerant of sibling-test traffic) call this immediately
/// before the section under observation, so the assertion no longer
/// depends on what ran earlier in the process.
pub fn reset_stats() {
    let c = counters();
    c.case_hits.reset();
    c.case_misses.reset();
    c.assess_hits.reset();
    c.assess_misses.reset();
}

/// Empties both caches and zeroes the counters (for tests and benchmarks
/// that need cold-start behaviour). In-flight computations finish on their
/// own cells and are simply not retained.
pub fn clear() {
    case_map().lock().expect("campaign cache poisoned").clear();
    assess_map()
        .lock()
        .expect("campaign cache poisoned")
        .clear();
    reset_stats();
}

/// Memoized [`campaign::run_case_study`]: the standard case study for a
/// scenario, computed at most once per `(scenario, seed, roster)` per
/// process and shared behind an [`Arc`].
///
/// # Errors
///
/// Propagates (and caches) benchmark configuration errors — impossible
/// with the standard roster.
pub fn cached_case_study(scenario: &Scenario, seed: u64) -> Result<Arc<BenchmarkReport>> {
    let key = CaseStudyKey {
        scenario: scenario.id,
        workload_units: scenario.workload_units,
        prevalence_bits: scenario.typical_prevalence.to_bits(),
        seed,
        roster: roster_fingerprint(
            &campaign::standard_tools(seed),
            &campaign::standard_metrics(),
        ),
        fault: campaign::fault_injection().map_or(0, |c| c.fingerprint()),
    };
    let cell = {
        let mut map = case_map().lock().expect("campaign cache poisoned");
        map.entry(key).or_default().clone()
    };
    let mut computed = false;
    let result = cell.get_or_init(|| {
        computed = true;
        campaign::run_case_study(scenario, seed).map(Arc::new)
    });
    if computed {
        counters().case_misses.inc();
    } else {
        counters().case_hits.inc();
    }
    result.clone()
}

/// Memoized [`assess_catalog`]: the generic attribute sheets for a metric
/// catalog under a configuration, computed at most once per process and
/// shared behind an [`Arc`].
#[must_use]
pub fn cached_assessment(
    metrics: &[Box<dyn Metric>],
    cfg: &AssessmentConfig,
) -> Arc<Vec<AttributeAssessment>> {
    let key = AssessmentKey {
        workload_size: cfg.workload_size,
        prevalence_bits: cfg.reference_prevalence.to_bits(),
        tool_sample: cfg.tool_sample,
        replicates: cfg.replicates,
        seed: cfg.seed,
        metrics: metrics_fingerprint(metrics),
    };
    let cell = {
        let mut map = assess_map().lock().expect("campaign cache poisoned");
        map.entry(key).or_default().clone()
    };
    let mut computed = false;
    let sheets = cell.get_or_init(|| {
        computed = true;
        Arc::new(assess_catalog(metrics, cfg))
    });
    if computed {
        counters().assess_misses.inc();
    } else {
        counters().assess_hits.inc();
    }
    sheets.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{standard_scenarios, Scenario, ScenarioId};
    use crate::selection::default_candidates;

    /// Serializes the tests in this module: [`clear`] must not run while a
    /// sibling test is asserting `Arc::ptr_eq` on live entries.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("cache test lock poisoned")
    }

    fn quick_cfg(seed: u64) -> AssessmentConfig {
        AssessmentConfig {
            workload_size: 60,
            reference_prevalence: 0.2,
            tool_sample: 10,
            replicates: 20,
            seed,
        }
    }

    #[test]
    fn assessment_cache_hits_on_repeat_and_distinguishes_configs() {
        let _guard = test_lock();
        let catalog = default_candidates();
        // Unique seeds so other tests in the binary cannot collide with
        // the per-key behaviour under observation.
        let cfg_a = quick_cfg(0x00CA_C4EA);
        let cfg_b = quick_cfg(0x00CA_C4EB);
        let before = stats();
        let first = cached_assessment(&catalog, &cfg_a);
        let second = cached_assessment(&catalog, &cfg_a);
        assert!(Arc::ptr_eq(&first, &second), "repeat must share the Arc");
        let other = cached_assessment(&catalog, &cfg_b);
        assert!(!Arc::ptr_eq(&first, &other), "different seed, new entry");
        let after = stats();
        // ≥ rather than ==: unrelated tests in this binary may also use
        // the (process-global) cache concurrently.
        assert!(after.assessment_misses >= before.assessment_misses + 2);
        assert!(after.assessment_hits > before.assessment_hits);
        // The cached sheets match a direct computation exactly.
        assert_eq!(*first, assess_catalog(&catalog, &cfg_a));
    }

    #[test]
    fn case_study_cache_is_keyed_on_workload_shape() {
        let _guard = test_lock();
        let mut scenario = Scenario::standard(ScenarioId::S1Audit);
        scenario.workload_units = 40;
        let seed = 0x00CA_C4EC;
        let first = cached_case_study(&scenario, seed).unwrap();
        let again = cached_case_study(&scenario, seed).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        // A different workload size is a different key.
        scenario.workload_units = 44;
        let other = cached_case_study(&scenario, seed).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert!(
            other.outcomes()[0].records().len() > first.outcomes()[0].records().len(),
            "larger workload, more cases"
        );
    }

    #[test]
    fn fingerprints_are_order_sensitive() {
        let catalog = default_candidates();
        let mut reversed = default_candidates();
        reversed.reverse();
        assert_ne!(
            metrics_fingerprint(&catalog),
            metrics_fingerprint(&reversed)
        );
        let tools = campaign::standard_tools(1);
        let fp1 = roster_fingerprint(&tools, &catalog);
        let fp2 = roster_fingerprint(&campaign::standard_tools(1), &catalog);
        assert_eq!(fp1, fp2, "fingerprint is content-based, not identity-based");
        assert_ne!(fp1, roster_fingerprint(&tools, &reversed));
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let _guard = test_lock();
        let _ = standard_scenarios();
        clear();
        let s = stats();
        assert_eq!(s, CacheStats::default());
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 0);
    }
}
