//! The benchmark runner: workload × tools × metrics.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use vdbench_corpus::Corpus;
use vdbench_detectors::{
    score_detector, score_detector_resilient, DetectionOutcome, Detector, ScanOutcome, ScanPolicy,
};
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::MetricId;
use vdbench_report::Table;
use vdbench_stats::intervals::{wilson, Confidence};

/// A configured benchmark: one corpus, a tool roster and a metric set.
///
/// ```
/// use vdbench_core::Benchmark;
/// use vdbench_corpus::CorpusBuilder;
/// use vdbench_detectors::{PatternScanner, TaintAnalyzer};
/// use vdbench_metrics::basic::{Precision, Recall};
///
/// let corpus = CorpusBuilder::new().units(60).seed(5).build();
/// let report = Benchmark::new(corpus)
///     .tool(Box::new(PatternScanner::aggressive()))
///     .tool(Box::new(TaintAnalyzer::precise()))
///     .metric(Box::new(Precision))
///     .metric(Box::new(Recall))
///     .run()?;
/// assert_eq!(report.tool_names().len(), 2);
/// # Ok::<(), vdbench_core::CoreError>(())
/// ```
pub struct Benchmark {
    corpus: Corpus,
    tools: Vec<Box<dyn Detector>>,
    metrics: Vec<Box<dyn Metric>>,
}

impl Benchmark {
    /// Starts a benchmark over a corpus.
    pub fn new(corpus: Corpus) -> Self {
        Benchmark {
            corpus,
            tools: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds a tool (builder style).
    pub fn tool(mut self, tool: Box<dyn Detector>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Adds several tools.
    pub fn tools(mut self, tools: Vec<Box<dyn Detector>>) -> Self {
        self.tools.extend(tools);
        self
    }

    /// Adds a metric column (builder style).
    pub fn metric(mut self, metric: Box<dyn Metric>) -> Self {
        self.metrics.push(metric);
        self
    }

    /// Adds several metric columns.
    pub fn metrics(mut self, metrics: Vec<Box<dyn Metric>>) -> Self {
        self.metrics.extend(metrics);
        self
    }

    /// The corpus under benchmark.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Runs every tool over the corpus and evaluates every metric.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when no tools or metrics were
    /// added.
    pub fn run(self) -> Result<BenchmarkReport> {
        self.validate()?;
        // Tools are independent: fan their runs out across scoped threads.
        // Detector: Send + Sync by trait bound; the corpus is shared
        // read-only.
        let corpus = &self.corpus;
        let outcomes: Vec<DetectionOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .tools
                .iter()
                .map(|t| scope.spawn(move || score_detector(t.as_ref(), corpus)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("detector threads do not panic"))
                .collect()
        });
        // An infallible run is a resilient run in which every scan
        // completed on its first attempt with no backoff.
        let scans = outcomes
            .iter()
            .map(|o| ScanRecord {
                tool: o.tool().to_string(),
                attempts: 1,
                backoff_ms: 0,
                error: None,
            })
            .collect();
        Ok(self.finish(outcomes, scans))
    }

    /// Runs every tool through the resilient scan engine
    /// ([`score_detector_resilient`]): each scan gets the policy's retry
    /// and step budgets, and a scan that exhausts its attempts degrades
    /// into an empty [`DetectionOutcome`] plus a failure record instead of
    /// aborting the benchmark.
    ///
    /// The report's [`BenchmarkReport::scans`] records attempts, recorded
    /// backoff and the terminal error per tool;
    /// [`BenchmarkReport::availability`] summarizes them. With fault-free
    /// tools this returns exactly what [`Benchmark::run`] returns (every
    /// scan completes on attempt 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when no tools or metrics were
    /// added. Scan failures are **not** errors — they are data.
    pub fn run_resilient(self, policy: &ScanPolicy) -> Result<BenchmarkReport> {
        self.validate()?;
        let corpus = &self.corpus;
        let scan_outcomes: Vec<ScanOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .tools
                .iter()
                .map(|t| scope.spawn(move || score_detector_resilient(t.as_ref(), corpus, policy)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("detector threads do not panic"))
                .collect()
        });
        let mut outcomes = Vec::with_capacity(scan_outcomes.len());
        let mut scans = Vec::with_capacity(scan_outcomes.len());
        for so in scan_outcomes {
            match so {
                ScanOutcome::Completed {
                    outcome,
                    attempts,
                    backoff_ms,
                } => {
                    scans.push(ScanRecord {
                        tool: outcome.tool().to_string(),
                        attempts,
                        backoff_ms,
                        error: None,
                    });
                    outcomes.push(outcome);
                }
                ScanOutcome::Failed {
                    tool,
                    attempts,
                    backoff_ms,
                    error,
                } => {
                    scans.push(ScanRecord {
                        tool: tool.clone(),
                        attempts,
                        backoff_ms,
                        error: Some(error.to_string()),
                    });
                    // An unavailable tool contributes an empty outcome:
                    // its confusion matrix is empty and every metric is
                    // honestly NaN, not zero.
                    outcomes.push(DetectionOutcome::empty(tool));
                }
            }
        }
        Ok(self.finish(outcomes, scans))
    }

    fn validate(&self) -> Result<()> {
        if self.tools.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "benchmark has no tools".into(),
            });
        }
        if self.metrics.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "benchmark has no metrics".into(),
            });
        }
        Ok(())
    }

    fn finish(self, outcomes: Vec<DetectionOutcome>, scans: Vec<ScanRecord>) -> BenchmarkReport {
        let metric_ids: Vec<MetricId> = self.metrics.iter().map(|m| m.id()).collect();
        let metric_labels: Vec<String> = self
            .metrics
            .iter()
            .map(|m| m.abbrev().to_string())
            .collect();
        let values: Vec<Vec<f64>> = outcomes
            .iter()
            .map(|o| {
                let cm = o.confusion();
                self.metrics.iter().map(|m| m.compute_or_nan(&cm)).collect()
            })
            .collect();
        BenchmarkReport {
            outcomes,
            scans,
            metric_ids,
            metric_labels,
            values,
        }
    }
}

/// The resilience record of one tool's scan within a benchmark run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanRecord {
    /// Tool name.
    pub tool: String,
    /// Attempts made (1 = the first try succeeded).
    pub attempts: u32,
    /// Total virtual backoff recorded between attempts, in milliseconds.
    pub backoff_ms: u64,
    /// The terminal error, when every attempt failed.
    pub error: Option<String>,
}

impl ScanRecord {
    /// Whether the scan ultimately failed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    /// Retries beyond the first attempt.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// The results of a benchmark run: per-tool outcomes plus the metric value
/// table (`values[tool][metric]`, `NaN` where undefined) and the per-tool
/// resilience records (one [`ScanRecord`] per tool, roster order).
///
/// Serializable so the campaign cache's disk tier
/// ([`crate::cache::cached_case_study`]) can persist whole reports as
/// content-addressed blobs: every field round-trips losslessly through
/// the vendored JSON codec (`f64` via shortest-round-trip formatting,
/// `NaN` via `null`), so a report replayed from disk renders
/// byte-identically to one computed in-process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkReport {
    outcomes: Vec<DetectionOutcome>,
    scans: Vec<ScanRecord>,
    metric_ids: Vec<MetricId>,
    metric_labels: Vec<String>,
    values: Vec<Vec<f64>>,
}

impl BenchmarkReport {
    /// Tool names in roster order.
    pub fn tool_names(&self) -> Vec<&str> {
        self.outcomes.iter().map(|o| o.tool()).collect()
    }

    /// Metric identifiers in column order.
    pub fn metric_ids(&self) -> &[MetricId] {
        &self.metric_ids
    }

    /// Raw per-tool detection outcomes.
    pub fn outcomes(&self) -> &[DetectionOutcome] {
        &self.outcomes
    }

    /// Per-tool resilience records, parallel to [`Self::outcomes`].
    pub fn scans(&self) -> &[ScanRecord] {
        &self.scans
    }

    /// Whether any tool's scan failed (its row is an empty outcome).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.scans.iter().any(ScanRecord::failed)
    }

    /// Fraction of tools whose scans completed (1.0 = fully available,
    /// also for an empty roster).
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.availability_stats().ratio()
    }

    /// Completed/failed scan counts as an
    /// [`Availability`](vdbench_metrics::Availability) tally —
    /// mergeable across scenarios for campaign-level roll-ups.
    #[must_use]
    pub fn availability_stats(&self) -> vdbench_metrics::Availability {
        let mut tally = vdbench_metrics::Availability::new();
        for s in &self.scans {
            tally.record(!s.failed());
        }
        tally
    }

    /// Converts a degraded report into a hard error — for callers that
    /// must not silently analyze partial data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ScanFailed`] for the first failed scan.
    pub fn require_complete(self) -> Result<Self> {
        if let Some(s) = self.scans.iter().find(|s| s.failed()) {
            return Err(CoreError::ScanFailed {
                tool: s.tool.clone(),
                attempts: s.attempts,
                reason: s.error.clone().unwrap_or_default(),
            });
        }
        Ok(self)
    }

    /// Metric value for one tool/metric pair.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn value(&self, tool: usize, metric: usize) -> f64 {
        self.values[tool][metric]
    }

    /// One metric's value across all tools (column extraction).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range metric index.
    pub fn metric_column(&self, metric: usize) -> Vec<f64> {
        self.values.iter().map(|row| row[metric]).collect()
    }

    /// Renders the case-study outcomes with Wilson confidence intervals on
    /// recall and precision — the honest form of Table 4: point estimates
    /// on finite workloads come with interval estimates, and two tools
    /// whose intervals overlap have not been distinguished.
    pub fn to_interval_table(&self, title: &str, confidence: Confidence) -> Table {
        let mut table = Table::new(vec![
            "tool".to_string(),
            format!("TPR [{:.0}% CI]", confidence.level() * 100.0),
            format!("PPV [{:.0}% CI]", confidence.level() * 100.0),
        ])
        .with_title(title);
        for (i, o) in self.outcomes.iter().enumerate() {
            if self.scan_failed(i) {
                table
                    .push_row(vec![o.tool().to_string(), "✗".into(), "✗".into()])
                    .expect("row width matches header");
                continue;
            }
            let cm = o.confusion();
            let tpr = wilson(cm.tp, cm.actual_positive(), confidence)
                .map(|iv| vdbench_report::format::interval(iv.estimate, iv.lower, iv.upper))
                .unwrap_or_else(|_| "—".into());
            let ppv = wilson(cm.tp, cm.predicted_positive(), confidence)
                .map(|iv| vdbench_report::format::interval(iv.estimate, iv.lower, iv.upper))
                .unwrap_or_else(|_| "—".into());
            table
                .push_row(vec![o.tool().to_string(), tpr, ppv])
                .expect("row width matches header");
        }
        table
    }

    /// Renders the report as a table (tools × metrics). Rows of tools
    /// whose scans failed render `✗` cells — distinguishing "tool was
    /// unavailable" from "metric undefined on this matrix" (`—`).
    pub fn to_table(&self, title: &str) -> Table {
        let mut header = vec!["tool".to_string()];
        header.extend(self.metric_labels.iter().cloned());
        let mut table = Table::new(header).with_title(title);
        for (i, (o, row)) in self.outcomes.iter().zip(&self.values).enumerate() {
            let mut cells = vec![o.tool().to_string()];
            if self.scan_failed(i) {
                cells.extend((0..row.len()).map(|_| "✗".to_string()));
            } else {
                cells.extend(row.iter().map(|v| vdbench_report::format::metric(*v)));
            }
            table.push_row(cells).expect("row width matches header");
        }
        table
    }

    /// Renders the per-tool availability table: status, attempts,
    /// recorded backoff and the terminal error of each scan.
    pub fn to_availability_table(&self, title: &str) -> Table {
        let mut table = Table::new(vec![
            "tool".to_string(),
            "status".to_string(),
            "attempts".to_string(),
            "backoff (ms)".to_string(),
            "error".to_string(),
        ])
        .with_title(title);
        for s in &self.scans {
            table
                .push_row(vec![
                    s.tool.clone(),
                    if s.failed() { "failed" } else { "ok" }.to_string(),
                    s.attempts.to_string(),
                    s.backoff_ms.to_string(),
                    s.error.clone().unwrap_or_else(|| "—".into()),
                ])
                .expect("row width matches header");
        }
        table
    }

    fn scan_failed(&self, tool: usize) -> bool {
        self.scans.get(tool).is_some_and(ScanRecord::failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_corpus::CorpusBuilder;
    use vdbench_detectors::{PatternScanner, ProfileTool, TaintAnalyzer};
    use vdbench_metrics::basic::{Precision, Recall};
    use vdbench_metrics::composite::Informedness;

    fn base() -> Benchmark {
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(0.3)
            .seed(61)
            .build();
        Benchmark::new(corpus)
    }

    #[test]
    fn empty_configuration_rejected() {
        assert!(matches!(base().run(), Err(CoreError::InvalidConfig { .. })));
        assert!(base()
            .tool(Box::new(PatternScanner::aggressive()))
            .run()
            .is_err());
        assert!(base().metric(Box::new(Recall)).run().is_err());
    }

    #[test]
    fn full_run_produces_table() {
        let report = base()
            .tools(vec![
                Box::new(PatternScanner::aggressive()),
                Box::new(TaintAnalyzer::precise()),
                Box::new(ProfileTool::new("emu", 0.7, 0.1, 1)),
            ])
            .metrics(vec![
                Box::new(Precision),
                Box::new(Recall),
                Box::new(Informedness),
            ])
            .run()
            .unwrap();
        assert_eq!(report.tool_names().len(), 3);
        assert_eq!(report.metric_ids().len(), 3);
        assert_eq!(report.metric_column(1).len(), 3);
        let table = report.to_table("case study");
        assert_eq!(table.row_count(), 3);
        let text = table.render_ascii();
        assert!(text.contains("taint-d3-precise"));
        assert!(text.contains("TPR"));
        // Values are plausible rates.
        for t in 0..3 {
            for m in 0..3 {
                let v = report.value(t, m);
                assert!(v.is_nan() || (-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn interval_table_renders() {
        let report = base()
            .tools(vec![
                Box::new(PatternScanner::aggressive()),
                Box::new(TaintAnalyzer::precise()),
            ])
            .metric(Box::new(Recall))
            .run()
            .unwrap();
        let table = report.to_interval_table("with intervals", Confidence::P95);
        let text = table.render_ascii();
        assert!(text.contains("95% CI"));
        assert!(text.contains('['), "{text}");
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn outcomes_align_with_tools() {
        let report = base()
            .tool(Box::new(PatternScanner::conservative()))
            .metric(Box::new(Recall))
            .run()
            .unwrap();
        assert_eq!(report.outcomes().len(), 1);
        assert_eq!(report.outcomes()[0].tool(), "pattern-cons");
    }
}
