//! The benchmark framework and metric-selection study — the core
//! contribution of *"On the Metrics for Benchmarking Vulnerability
//! Detection Tools"* (Antunes & Vieira, DSN 2015).
//!
//! The crate wires the substrates into the paper's three-stage method:
//!
//! 1. **Gather & analyze** — [`attributes`] empirically scores every
//!    catalog metric against the *characteristics of a good metric*
//!    (validity, prevalence invariance, chance correction, discriminative
//!    power, stability, definedness, simplicity) plus the scenario-specific
//!    *cost alignment*;
//! 2. **Scenario analysis** — [`scenario`] defines the four concrete usage
//!    scenarios; [`benchmark`] and [`ranking`] run tool case studies and
//!    expose how the metric choice changes tool rankings;
//! 3. **MCDA validation** — [`selection`] performs the analytical
//!    selection and validates it against an AHP over simulated expert
//!    panels ([`validation`] adds SAW/TOPSIS ablations).
//!
//! [`campaign`] packages the standard experiment configuration (scenario
//! workloads + tool roster) used by every table/figure binary in
//! `vdbench-bench`; [`cache`] memoizes the expensive campaign artifacts
//! (case studies, attribute assessments, raw tool scans) so the whole
//! suite computes each one exactly once per process — and, with the
//! persistent disk tier enabled ([`cache::set_disk_cache`]), exactly once
//! per workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod benchmark;
pub mod cache;
pub mod campaign;
pub mod consistency;
pub mod error;
pub mod ranking;
pub mod scale;
pub mod scenario;
pub mod selection;
pub mod validation;

pub use attributes::{assess_catalog, AssessmentConfig, AttributeAssessment, MetricAttribute};
pub use benchmark::{Benchmark, BenchmarkReport, ScanRecord};
pub use cache::{
    artifact_key, blob_inventory_in, bytes_blob_get, bytes_blob_put, cached_artifact,
    cached_assessment, cached_case_study, cached_scan, disk_cache_dir, fnv1a_fold_u64, fnv1a_key,
    gc_dir, raw_blob_get, raw_blob_put, set_disk_cache, BlobInventory, CacheStats,
    CACHE_SCHEMA_VERSION,
};
pub use campaign::{fault_injection, run_case_study_faulty, set_fault_injection};
pub use error::CoreError;
pub use ranking::{rank_by_metric, RankingTable};
pub use scale::{
    default_scan_threads, streamed_scan, streamed_scan_serial, streamed_scan_with_threads,
    ScaleDelta, ScalePoint, ScaleRecord, StreamedScanReport, DEFAULT_SHARD_UNITS,
};
pub use scenario::{Scenario, ScenarioId};
pub use selection::{MetricSelector, SelectionOutcome};
