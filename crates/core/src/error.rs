//! Unified error type for the benchmark framework.

use std::fmt;
use vdbench_mcda::McdaError;
use vdbench_metrics::MetricError;
use vdbench_stats::StatsError;

/// Errors surfaced by the core framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A metric computation failed.
    Metric(MetricError),
    /// A statistics routine failed.
    Stats(StatsError),
    /// An MCDA routine failed.
    Mcda(McdaError),
    /// The experiment configuration is invalid.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The benchmark produced no usable data for the requested analysis.
    NoData {
        /// What was missing.
        reason: &'static str,
    },
    /// A tool's scan failed after exhausting its retry budget and the
    /// caller demanded a complete report
    /// (see `BenchmarkReport::require_complete`).
    ScanFailed {
        /// The tool whose scan failed.
        tool: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The terminal scan error, rendered.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Metric(e) => write!(f, "metric error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Mcda(e) => write!(f, "mcda error: {e}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::NoData { reason } => write!(f, "no data: {reason}"),
            CoreError::ScanFailed {
                tool,
                attempts,
                reason,
            } => write!(
                f,
                "scan failed: {tool} gave up after {attempts} attempt(s): {reason}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Metric(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Mcda(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MetricError> for CoreError {
    fn from(e: MetricError) -> Self {
        CoreError::Metric(e)
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<McdaError> for CoreError {
    fn from(e: McdaError) -> Self {
        CoreError::Mcda(e)
    }
}

/// Crate-wide result alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = MetricError::EmptyMatrix.into();
        assert!(e.to_string().contains("metric error"));
        assert!(e.source().is_some());
        let e: CoreError = StatsError::EmptyInput.into();
        assert!(e.to_string().contains("statistics error"));
        let e: CoreError = McdaError::Degenerate { reason: "x" }.into();
        assert!(e.to_string().contains("mcda error"));
        let e = CoreError::InvalidConfig {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e = CoreError::NoData { reason: "empty" };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn scan_failed_renders_tool_attempts_and_reason() {
        let e = CoreError::ScanFailed {
            tool: "taint-d3-precise".into(),
            attempts: 3,
            reason: "crash at unit 17: injected fault".into(),
        };
        let text = e.to_string();
        assert!(text.contains("taint-d3-precise"), "{text}");
        assert!(text.contains("3 attempt(s)"), "{text}");
        assert!(text.contains("unit 17"), "{text}");
        assert!(e.source().is_none());
        // Scan failures compare structurally like every other variant.
        assert_eq!(
            e,
            CoreError::ScanFailed {
                tool: "taint-d3-precise".into(),
                attempts: 3,
                reason: "crash at unit 17: injected fault".into(),
            }
        );
    }
}
