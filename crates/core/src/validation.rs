//! Stage-3 validation drivers: cross-scenario runs, MCDA-method ablation
//! and the expert-noise robustness sweep (Fig. 4).

use crate::error::Result;
use crate::scenario::{standard_scenarios, Scenario};
use crate::selection::{MetricSelector, SelectionOutcome};
use serde::{Deserialize, Serialize};
use vdbench_experts::Panel;
use vdbench_mcda::decision::{Criterion, DecisionMatrix, Direction};
use vdbench_mcda::priority::eigenvector_priorities;
use vdbench_mcda::{saw, topsis};
use vdbench_metrics::MetricId;
use vdbench_stats::correlation::kendall_tau;
use vdbench_stats::SeededRng;

/// Runs the full selection + validation pipeline over all four standard
/// scenarios with fresh panels of the given shape.
///
/// # Errors
///
/// Propagates selection errors.
pub fn validate_all_scenarios(
    selector: &MetricSelector,
    panel_size: usize,
    panel_noise: f64,
    seed: u64,
) -> Result<Vec<SelectionOutcome>> {
    standard_scenarios()
        .iter()
        .enumerate()
        .map(|(i, scenario)| {
            let panel = Panel::homogeneous(
                &scenario.weight_vector(),
                panel_size,
                panel_noise,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            );
            selector.select(scenario, &panel)
        })
        .collect()
}

/// Rankings produced by three MCDA methods on identical inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodAblation {
    /// Candidate ids in candidate order.
    pub candidates: Vec<MetricId>,
    /// AHP ranking (from [`MetricSelector::select`]).
    pub ahp: Vec<usize>,
    /// SAW ranking on the same ratings and panel-derived weights.
    pub saw: Vec<usize>,
    /// TOPSIS ranking on the same inputs.
    pub topsis: Vec<usize>,
    /// τ(AHP, SAW).
    pub tau_ahp_saw: f64,
    /// τ(AHP, TOPSIS).
    pub tau_ahp_topsis: f64,
}

impl MethodAblation {
    /// Whether all three methods crown the same winner.
    pub fn winners_agree(&self) -> bool {
        self.ahp[0] == self.saw[0] && self.ahp[0] == self.topsis[0]
    }
}

/// Runs AHP, SAW and TOPSIS on the same scenario/panel and compares the
/// resulting metric rankings — showing the conclusions are not an artifact
/// of the MCDA algorithm choice.
///
/// # Errors
///
/// Propagates selection and MCDA errors.
pub fn method_ablation(
    selector: &MetricSelector,
    scenario: &Scenario,
    panel: &Panel,
) -> Result<MethodAblation> {
    let outcome = selector.select(scenario, panel)?;
    let ratings = selector.ratings_for(scenario);

    // Panel-derived criteria weights (same input AHP used).
    let consensus = panel.aggregate()?;
    let weights = eigenvector_priorities(&consensus)?.weights;

    let criteria: Vec<Criterion> = crate::attributes::MetricAttribute::all()
        .iter()
        .zip(&weights)
        .map(|(a, w)| Criterion {
            name: a.label().to_string(),
            weight: *w,
            direction: Direction::Benefit,
        })
        .collect();
    let alternatives: Vec<String> = selector
        .candidates()
        .iter()
        .map(|m| m.abbrev().to_string())
        .collect();
    let dm = DecisionMatrix::new(alternatives, criteria, ratings)?;
    let saw_result = saw::evaluate(&dm)?;
    let topsis_result = topsis::evaluate(&dm)?;

    let pos = |r: &[usize]| -> Vec<f64> {
        vdbench_mcda::ranking::positions_from_ranking(r)
            .iter()
            .map(|&p| p as f64)
            .collect()
    };
    let ahp_pos = pos(&outcome.mcda_ranking);
    let tau_ahp_saw = kendall_tau(&ahp_pos, &pos(&saw_result.ranking)).unwrap_or(f64::NAN);
    let tau_ahp_topsis = kendall_tau(&ahp_pos, &pos(&topsis_result.ranking)).unwrap_or(f64::NAN);

    Ok(MethodAblation {
        candidates: outcome.candidates.clone(),
        ahp: outcome.mcda_ranking,
        saw: saw_result.ranking,
        topsis: topsis_result.ranking,
        tau_ahp_saw,
        tau_ahp_topsis,
    })
}

/// One point of the Fig. 4 noise-robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoisePoint {
    /// Expert elicitation noise σ.
    pub noise: f64,
    /// Fraction of panels whose MCDA winner matches the analytical winner.
    pub top1_persistence: f64,
    /// Mean Kendall τ between MCDA and analytical rankings.
    pub mean_tau: f64,
}

/// Sweeps expert noise: for each σ, draws `panels_per_point` independent
/// panels and measures how often the MCDA output still matches the
/// analytical selection.
///
/// # Errors
///
/// Propagates selection errors.
pub fn noise_robustness(
    selector: &MetricSelector,
    scenario: &Scenario,
    noise_grid: &[f64],
    panels_per_point: usize,
    panel_size: usize,
    seed: u64,
) -> Result<Vec<NoisePoint>> {
    let mut rng = SeededRng::new(seed);
    let mut out = Vec::with_capacity(noise_grid.len());
    for &noise in noise_grid {
        let mut hits = 0usize;
        let mut taus = Vec::with_capacity(panels_per_point);
        for _ in 0..panels_per_point {
            let panel_seed = {
                use rand::RngCore;
                rng.next_u64()
            };
            let panel =
                Panel::homogeneous(&scenario.weight_vector(), panel_size, noise, panel_seed);
            let outcome = selector.select(scenario, &panel)?;
            if outcome.top1_agree {
                hits += 1;
            }
            if outcome.agreement_tau.is_finite() {
                taus.push(outcome.agreement_tau);
            }
        }
        out.push(NoisePoint {
            noise,
            top1_persistence: hits as f64 / panels_per_point as f64,
            mean_tau: if taus.is_empty() {
                f64::NAN
            } else {
                taus.iter().sum::<f64>() / taus.len() as f64
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AssessmentConfig;
    use crate::scenario::ScenarioId;
    use crate::selection::default_candidates;

    fn selector() -> MetricSelector {
        MetricSelector::new(
            default_candidates(),
            AssessmentConfig {
                workload_size: 200,
                reference_prevalence: 0.2,
                tool_sample: 40,
                replicates: 80,
                seed: 5,
            },
        )
        .unwrap()
    }

    #[test]
    fn all_scenarios_validate() {
        let s = selector();
        let outcomes = validate_all_scenarios(&s, 5, 0.15, 11).unwrap();
        assert_eq!(outcomes.len(), 4);
        let ids: Vec<ScenarioId> = outcomes.iter().map(|o| o.scenario).collect();
        assert_eq!(ids, ScenarioId::all());
        for o in &outcomes {
            assert!(
                o.agreement_tau > 0.3,
                "{}: tau {}",
                o.scenario,
                o.agreement_tau
            );
        }
    }

    #[test]
    fn ablation_methods_broadly_agree() {
        let s = selector();
        let scenario = Scenario::standard(ScenarioId::S2Gate);
        let panel = Panel::homogeneous(&scenario.weight_vector(), 7, 0.1, 13);
        let ablation = method_ablation(&s, &scenario, &panel).unwrap();
        assert!(
            ablation.tau_ahp_saw > 0.5,
            "AHP vs SAW tau {}",
            ablation.tau_ahp_saw
        );
        assert!(
            ablation.tau_ahp_topsis > 0.3,
            "AHP vs TOPSIS tau {}",
            ablation.tau_ahp_topsis
        );
        assert_eq!(ablation.ahp.len(), ablation.candidates.len());
    }

    #[test]
    fn robustness_degrades_with_noise() {
        let s = selector();
        let scenario = Scenario::standard(ScenarioId::S3Procurement);
        let points = noise_robustness(&s, &scenario, &[0.1, 3.0], 12, 5, 17).unwrap();
        assert_eq!(points.len(), 2);
        // Low-noise panels must reproduce the analytical winner almost
        // always; heavy noise may not (sampling tolerance of one panel).
        assert!(
            points[0].top1_persistence >= points[1].top1_persistence - 1.0 / 12.0,
            "persistence should not improve with noise: {} → {}",
            points[0].top1_persistence,
            points[1].top1_persistence
        );
        assert!(points[0].top1_persistence >= 0.7, "{:?}", points[0]);
        assert!(
            points[0].mean_tau >= points[1].mean_tau - 0.05,
            "tau should not improve materially with noise: {} → {}",
            points[0].mean_tau,
            points[1].mean_tau
        );
    }
}
