//! Cross-workload ranking consistency (extension study).
//!
//! The procurement scenario's core requirement made quantitative: if the
//! same tools are benchmarked on workloads that differ *only* in
//! vulnerability density, does a metric keep ranking them the same way?
//! For each candidate metric this study computes Kendall's W over the
//! tool rankings across the workload sweep (1 = perfectly consistent) and
//! a Friedman test on the metric's tool scores (does the metric see *any*
//! consistent tool differences at all?).

use crate::cache::cached_scan;
use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use vdbench_corpus::CorpusBuilder;
use vdbench_detectors::Detector;
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::MetricId;
use vdbench_stats::correlation::kendall_w;
use vdbench_stats::hypothesis::friedman;

/// Configuration of the cross-workload sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyConfig {
    /// Vulnerability densities of the workloads (one workload each).
    pub densities: Vec<f64>,
    /// Cases per workload.
    pub units: usize,
    /// Seed (each workload derives its own sub-seed).
    pub seed: u64,
}

impl Default for ConsistencyConfig {
    /// Six densities from 2% to 50%, 400 cases each.
    fn default() -> Self {
        ConsistencyConfig {
            densities: vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5],
            units: 400,
            seed: 0xC0_515,
        }
    }
}

/// Per-metric consistency results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricConsistency {
    /// The metric.
    pub metric: MetricId,
    /// Kendall's W of the metric's tool rankings across workloads
    /// (`NaN` when undefined, e.g. the metric tied every tool everywhere).
    pub kendall_w: f64,
    /// Friedman-test p-value over the metric's tool scores across
    /// workloads (small = the metric consistently distinguishes tools).
    pub friedman_p: f64,
    /// How many workloads had the metric defined for every tool.
    pub defined_workloads: usize,
}

/// Runs the sweep: every tool on every workload, every metric scored.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an empty configuration and
/// [`CoreError::NoData`] when no workload yields defined scores.
pub fn cross_workload_consistency(
    tools: &[Box<dyn Detector>],
    metrics: &[Box<dyn Metric>],
    cfg: &ConsistencyConfig,
) -> Result<Vec<MetricConsistency>> {
    if tools.len() < 2 {
        return Err(CoreError::InvalidConfig {
            reason: "need at least two tools to rank".into(),
        });
    }
    if metrics.is_empty() || cfg.densities.len() < 2 {
        return Err(CoreError::InvalidConfig {
            reason: "need metrics and at least two workloads".into(),
        });
    }

    // outcome_scores[w][t] = pooled confusion matrix of tool t on workload w.
    let mut confusions = Vec::with_capacity(cfg.densities.len());
    for (w, &density) in cfg.densities.iter().enumerate() {
        let corpus = CorpusBuilder::new()
            .units(cfg.units)
            .vulnerability_density(density)
            .seed(cfg.seed ^ ((w as u64 + 1) * 0x9E37))
            .build();
        // Cached scans: within a process the sweep shares outcomes with
        // any sibling artifact on the same `(tool, corpus)`; across
        // processes the disk tier replays them without re-scanning.
        let row: Vec<_> = tools
            .iter()
            .map(|t| cached_scan(t.as_ref(), &corpus).confusion())
            .collect();
        confusions.push(row);
    }

    let mut out = Vec::with_capacity(metrics.len());
    for metric in metrics {
        // ratings[w][t] = oriented metric value; workloads with any
        // undefined tool value are dropped for this metric (a benchmark
        // could not report them either).
        let mut ratings: Vec<Vec<f64>> = Vec::new();
        for row in &confusions {
            let vals: Vec<f64> = row
                .iter()
                .map(|cm| {
                    let v = metric.compute_or_nan(cm);
                    if metric.higher_is_better() {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            if vals.iter().all(|v| v.is_finite()) {
                ratings.push(vals);
            }
        }
        let defined_workloads = ratings.len();
        let (w, p) = if defined_workloads >= 2 {
            (
                kendall_w(&ratings).unwrap_or(f64::NAN),
                friedman(&ratings).map(|r| r.p_value).unwrap_or(f64::NAN),
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        out.push(MetricConsistency {
            metric: metric.id(),
            kendall_w: w,
            friedman_p: p,
            defined_workloads,
        });
    }
    if out.iter().all(|m| m.defined_workloads == 0) {
        return Err(CoreError::NoData {
            reason: "no metric was defined on any workload",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_detectors::ProfileTool;
    use vdbench_metrics::basic::{Accuracy, Precision, Recall};
    use vdbench_metrics::composite::Informedness;

    fn tools() -> Vec<Box<dyn Detector>> {
        // A clear quality ladder so rankings are meaningful.
        vec![
            Box::new(ProfileTool::new("gold", 0.95, 0.03, 1)) as Box<dyn Detector>,
            Box::new(ProfileTool::new("silver", 0.70, 0.10, 2)),
            Box::new(ProfileTool::new("bronze", 0.45, 0.20, 3)),
        ]
    }

    fn quick_cfg() -> ConsistencyConfig {
        ConsistencyConfig {
            densities: vec![0.05, 0.15, 0.35],
            units: 1000,
            seed: 5,
        }
    }

    #[test]
    fn invariant_metrics_are_consistent() {
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(Recall),
            Box::new(Informedness),
            Box::new(Precision),
            Box::new(Accuracy),
        ];
        let results = cross_workload_consistency(&tools(), &metrics, &quick_cfg()).unwrap();
        assert_eq!(results.len(), 4);
        let by_id = |id: MetricId| results.iter().find(|r| r.metric == id).unwrap();
        let recall = by_id(MetricId::Recall);
        let inf = by_id(MetricId::Informedness);
        assert!(
            recall.kendall_w > 0.95,
            "recall consistency W = {}",
            recall.kendall_w
        );
        assert!(inf.kendall_w > 0.95, "informedness W = {}", inf.kendall_w);
        // A consistent quality ladder shows up in the Friedman test.
        assert!(inf.friedman_p < 0.1, "friedman p = {}", inf.friedman_p);
        for r in &results {
            assert_eq!(r.defined_workloads, 3);
        }
    }

    #[test]
    fn validation_errors() {
        let metrics: Vec<Box<dyn Metric>> = vec![Box::new(Recall)];
        let one_tool: Vec<Box<dyn Detector>> =
            vec![Box::new(ProfileTool::new("solo", 0.5, 0.1, 1))];
        assert!(cross_workload_consistency(&one_tool, &metrics, &quick_cfg()).is_err());
        let no_metrics: Vec<Box<dyn Metric>> = vec![];
        assert!(cross_workload_consistency(&tools(), &no_metrics, &quick_cfg()).is_err());
        let bad_cfg = ConsistencyConfig {
            densities: vec![0.1],
            units: 100,
            seed: 1,
        };
        assert!(cross_workload_consistency(&tools(), &metrics, &bad_cfg).is_err());
    }
}
