//! Million-unit campaigns: streamed generation, pipelined fixed-memory
//! sharded scanning, and incremental delta rescans.
//!
//! [`streamed_scan`] drives one detection tool over a
//! [`CorpusBuilder`]-described corpus **without ever materializing it**:
//! a plan producer walks the [`vdbench_corpus::CorpusStream`] while a
//! pool of shard workers materialize, scan and score bounded shards, and
//! the per-shard confusion partials are folded *in shard order* into one
//! running [`ConfusionMatrix`] — peak memory is a function of the shard
//! size times the worker count, not the corpus size (the `vdbench scale`
//! bench and the CI `scale-smoke` job assert the resulting flat RSS
//! curve).
//!
//! # Pipeline
//!
//! ```text
//!  producer ──sync_channel──▶ workers (×N) ──sync_channel──▶ in-order fold
//!  next_plans                 process_shard                  reorder buffer
//! ```
//!
//! Both channels are bounded by the thread count and the fold drains a
//! [`std::collections::BTreeMap`] reorder buffer keyed on shard index, so
//! at most O(threads) shards are in flight and the aggregate is absorbed
//! in exactly the serial order. Every per-shard quantity (`rescanned`,
//! `replayed`, the preview head, the confusion partial) is computed
//! inside `process_shard` from the shard's own plans — never from
//! schedule state — so the pipelined report is **byte-identical to the
//! retained serial oracle** ([`streamed_scan_serial`]) at any thread
//! count and shard size. `--scan-threads 1` *is* the serial oracle.
//!
//! # Incrementality contract
//!
//! Each shard persists two blobs in the store:
//!
//! * a *manifest* (kind `"manifest"`, compact binary codec): one entry
//!   per unit holding the unit's content fingerprint
//!   ([`vdbench_corpus::UnitPlan::fingerprint`] — stable across corpus
//!   growth, moved by any generator-knob or seed change) together with
//!   its scored [`SiteOutcome`]s and raw [`Finding`]s;
//! * a *header* (kind `"mhdr"`): an FNV fold of the shard's unit
//!   fingerprints plus the precomputed aggregate (sites, confusion
//!   partial, finding count, preview head).
//!
//! On a later run a shard whose fingerprint digest matches its header
//! replays **O(1)**: the aggregate folds in from the header alone, with
//! no per-unit decode and no entry clones. A digest miss falls back to
//! per-unit fingerprint matching against the manifest — growing a corpus
//! by `k` units rescans exactly `k` and invalidates only the tail
//! shard's digest; an identical rerun rescans nothing and decodes
//! nothing. `scan.units.{rescanned,replayed}` and
//! `scan.shards.digest_hits` on the telemetry registry (and the
//! [`StreamedScanReport`] fields) count the paths taken.
//!
//! Manifests are addressed per `(tool, fault, shard size, shard index)`,
//! but matching is **per unit**, so replay/rescan totals are independent
//! of the shard size used to write the manifest being read — a manifest
//! written at `--shard-units 512` simply never aliases one written at
//! `4096`. A corrupt or stale header (or manifest) is a miss, never an
//! error: the shard degrades to per-unit matching, then to a rescan.
//! With the disk tier off, every unit rescans (the stream path still
//! runs in bounded memory).

use crate::cache::{self, tool_fingerprint};
use crate::campaign;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, OnceLock};
use vdbench_corpus::{CorpusBuilder, UnitMaterializer, UnitPlan};
use vdbench_detectors::{score_findings, Detector, Finding, SiteOutcome};
use vdbench_metrics::ConfusionMatrix;
use vdbench_telemetry::registry::Counter;

/// Default shard size: large enough to saturate the rayon pool per
/// shard, small enough that a shard of MiniWeb units plus its findings
/// stays a few tens of MB — the knob behind the flat-RSS guarantee.
pub const DEFAULT_SHARD_UNITS: usize = 4096;

/// How many findings the report retains verbatim (the CLI preview);
/// everything else is counted, not kept — the aggregate must stay O(1)
/// in corpus size.
const PREVIEW_FINDINGS: usize = 3;

/// The `scan.*` counters on the process-wide telemetry registry.
struct ScaleCounters {
    rescanned: Arc<Counter>,
    replayed: Arc<Counter>,
    shards: Arc<Counter>,
    digest_hits: Arc<Counter>,
}

fn counters() -> &'static ScaleCounters {
    static COUNTERS: OnceLock<ScaleCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = vdbench_telemetry::registry::global();
        ScaleCounters {
            rescanned: reg.counter("scan.units.rescanned"),
            replayed: reg.counter("scan.units.replayed"),
            shards: reg.counter("scan.shards"),
            digest_hits: reg.counter("scan.shards.digest_hits"),
        }
    })
}

/// Aggregate of one streamed scan — O(1) in corpus size.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedScanReport {
    /// The tool's display name.
    pub tool: String,
    /// Units streamed.
    pub units: u64,
    /// Ground-truth sites scored.
    pub sites: u64,
    /// Shards the stream was consumed in.
    pub shards: u64,
    /// Pooled confusion matrix — identical to scoring the whole corpus
    /// monolithically (per-shard partials merge associatively).
    pub confusion: ConfusionMatrix,
    /// Total findings the tool reported.
    pub findings: u64,
    /// The first few findings, verbatim (corpus order).
    pub preview: Vec<Finding>,
    /// Units materialized and scanned this run.
    pub rescanned: u64,
    /// Units replayed from a fingerprint-matching manifest entry or a
    /// digest-matching shard header.
    pub replayed: u64,
    /// Shards that replayed O(1) from their header digest alone.
    pub digest_hits: u64,
}

/// Blob-store key of one shard manifest. The corpus seed and generator
/// knobs are deliberately *not* part of the address — they live in the
/// per-unit fingerprints, so a changed workload under the same address
/// simply fails every fingerprint match and rescans (correct, just
/// cold) instead of multiplying addresses.
fn manifest_key(tool_fp: u64, fault_fp: u64, shard_units: usize, shard_index: u64) -> u64 {
    let mut h = cache::fnv1a_key(b"manifest-v2");
    for word in [tool_fp, fault_fp, shard_units as u64, shard_index] {
        h = cache::fnv1a_fold_u64(h, word);
    }
    h
}

/// FNV fold over a shard's unit fingerprints — the identity a header
/// must match for the O(1) replay path. Any changed, added or removed
/// unit (including a different plan count) moves the digest.
fn shard_digest(plans: &[UnitPlan]) -> u64 {
    let mut d = cache::fnv1a_key(b"shard-digest-v1");
    for p in plans {
        d = cache::fnv1a_fold_u64(d, p.fingerprint);
    }
    d
}

/// The O(1) header of one shard manifest (blob kind `"mhdr"`): the
/// shard's fingerprint digest plus everything the fold needs, so a
/// digest-matching shard never touches its entry blob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardHeader {
    /// [`shard_digest`] of the plans the manifest was written for.
    digest: u64,
    /// Units in the shard.
    units: u64,
    /// Ground-truth sites in the shard.
    sites: u64,
    /// The shard's confusion partial.
    confusion: ConfusionMatrix,
    /// Findings the tool reported on the shard.
    findings: u64,
    /// The shard's first [`PREVIEW_FINDINGS`] findings, verbatim.
    preview: Vec<Finding>,
}

// ---------------------------------------------------------------------------
// Shard manifest entries: columnar layout + compact binary codec
// ---------------------------------------------------------------------------

/// Per-unit scan results of one shard in columnar form: unit metadata in
/// parallel vectors, outcomes/findings in two flat pools sliced by
/// per-unit end offsets. Building a cold shard is three `extend` calls —
/// no per-unit vector allocations, no record clones — and the layout
/// maps 1:1 onto the binary manifest codec.
#[derive(Debug, Clone, Default, PartialEq)]
struct ShardEntries {
    /// Global unit indices, strictly ascending.
    indices: Vec<u32>,
    /// Content fingerprint per unit.
    fingerprints: Vec<u64>,
    /// Exclusive end offset of each unit's slice of `outcomes`.
    outcome_ends: Vec<u32>,
    /// Exclusive end offset of each unit's slice of `findings`.
    finding_ends: Vec<u32>,
    /// All scored records of the shard, unit order.
    outcomes: Vec<SiteOutcome>,
    /// All raw findings of the shard, unit order.
    findings: Vec<Finding>,
}

impl ShardEntries {
    fn with_capacity(units: usize) -> Self {
        ShardEntries {
            indices: Vec::with_capacity(units),
            fingerprints: Vec::with_capacity(units),
            outcome_ends: Vec::with_capacity(units),
            finding_ends: Vec::with_capacity(units),
            outcomes: Vec::new(),
            findings: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.indices.len()
    }

    /// Position of a unit by global index (the indices are ascending).
    fn find(&self, index: u32) -> Option<usize> {
        self.indices.binary_search(&index).ok()
    }

    fn outcome_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = if i == 0 {
            0
        } else {
            self.outcome_ends[i - 1] as usize
        };
        start..self.outcome_ends[i] as usize
    }

    fn finding_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = if i == 0 {
            0
        } else {
            self.finding_ends[i - 1] as usize
        };
        start..self.finding_ends[i] as usize
    }

    /// Appends unit `i` of `other` (a decoded manifest) as a replayed
    /// unit of this shard.
    fn push_replayed(&mut self, other: &ShardEntries, i: usize) {
        self.indices.push(other.indices[i]);
        self.fingerprints.push(other.fingerprints[i]);
        self.outcomes
            .extend_from_slice(&other.outcomes[other.outcome_range(i)]);
        self.findings
            .extend_from_slice(&other.findings[other.finding_range(i)]);
        self.outcome_ends.push(self.outcomes.len() as u32);
        self.finding_ends.push(self.findings.len() as u32);
    }
}

/// Magic prefix of the binary manifest codec; the trailing digit is the
/// codec's own version (the file name also carries the store-wide
/// [`cache::CACHE_SCHEMA_VERSION`]).
const MANIFEST_MAGIC: [u8; 8] = *b"vdmanif2";

/// Stable wire code of a [`VulnClass`]. Exhaustive match: adding a
/// variant fails compilation here, forcing a codec (and schema) bump
/// instead of silently mis-decoding old blobs.
fn class_code(c: vdbench_corpus::VulnClass) -> u8 {
    use vdbench_corpus::VulnClass::*;
    match c {
        SqlInjection => 0,
        Xss => 1,
        CommandInjection => 2,
        PathTraversal => 3,
        HardcodedCredentials => 4,
        WeakHash => 5,
    }
}

fn class_from_code(b: u8) -> Option<vdbench_corpus::VulnClass> {
    use vdbench_corpus::VulnClass::*;
    Some(match b {
        0 => SqlInjection,
        1 => Xss,
        2 => CommandInjection,
        3 => PathTraversal,
        4 => HardcodedCredentials,
        5 => WeakHash,
        _ => return None,
    })
}

/// Stable wire code of a [`FlowShape`] (same exhaustiveness discipline
/// as [`class_code`]).
///
/// [`FlowShape`]: vdbench_corpus::FlowShape
fn shape_code(s: vdbench_corpus::FlowShape) -> u8 {
    use vdbench_corpus::FlowShape::*;
    match s {
        Direct => 0,
        Chained => 1,
        InputGated => 2,
        LoopCarried => 3,
        Interprocedural => 4,
        SanitizedCorrect => 5,
        SanitizedMismatch => 6,
        SanitizedPartial => 7,
        DeadGuard => 8,
        LiteralOnly => 9,
        Stored => 10,
        StoredLiteral => 11,
        BadConfiguration => 12,
        GoodConfiguration => 13,
    }
}

fn shape_from_code(b: u8) -> Option<vdbench_corpus::FlowShape> {
    use vdbench_corpus::FlowShape::*;
    Some(match b {
        0 => Direct,
        1 => Chained,
        2 => InputGated,
        3 => LoopCarried,
        4 => Interprocedural,
        5 => SanitizedCorrect,
        6 => SanitizedMismatch,
        7 => SanitizedPartial,
        8 => DeadGuard,
        9 => LiteralOnly,
        10 => Stored,
        11 => StoredLiteral,
        12 => BadConfiguration,
        13 => GoodConfiguration,
        _ => return None,
    })
}

/// Serializes a shard's entries into the compact binary manifest layout:
/// fixed-width little-endian columns, length-prefixed rationale strings.
/// A 4096-unit shard encodes in a few hundred kB where the former
/// serde-JSON entry list took several MB — manifest I/O, not scanning,
/// dominated the cold path before this codec.
fn encode_entries(e: &ShardEntries) -> Vec<u8> {
    let rationale_bytes: usize = e.findings.iter().map(|f| f.rationale.len()).sum();
    let mut out = Vec::with_capacity(
        20 + e.len() * 20 + e.outcomes.len() * 12 + e.findings.len() * 22 + rationale_bytes,
    );
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.extend_from_slice(&(e.len() as u32).to_le_bytes());
    out.extend_from_slice(&(e.outcomes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(e.findings.len() as u32).to_le_bytes());
    for i in 0..e.len() {
        out.extend_from_slice(&e.indices[i].to_le_bytes());
        out.extend_from_slice(&e.fingerprints[i].to_le_bytes());
        out.extend_from_slice(&e.outcome_ends[i].to_le_bytes());
        out.extend_from_slice(&e.finding_ends[i].to_le_bytes());
    }
    for r in &e.outcomes {
        out.extend_from_slice(&r.site.unit.to_le_bytes());
        out.extend_from_slice(&r.site.sink.to_le_bytes());
        let mut flags = 0u8;
        if r.reported {
            flags |= 1;
        }
        if r.vulnerable {
            flags |= 2;
        }
        if r.claimed_class.is_some() {
            flags |= 4;
        }
        out.push(flags);
        out.push(r.claimed_class.map_or(0, class_code));
        out.push(class_code(r.class));
        out.push(shape_code(r.shape));
    }
    for f in &e.findings {
        out.extend_from_slice(&f.site.unit.to_le_bytes());
        out.extend_from_slice(&f.site.sink.to_le_bytes());
        out.push(u8::from(f.class.is_some()));
        out.push(f.class.map_or(0, class_code));
        out.extend_from_slice(&f.confidence.to_bits().to_le_bytes());
        out.extend_from_slice(&(f.rationale.len() as u32).to_le_bytes());
        out.extend_from_slice(f.rationale.as_bytes());
    }
    out
}

/// Bounds-checked little-endian reader over a manifest blob.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decodes a binary manifest blob. Every malformation — wrong magic,
/// truncation, trailing bytes, non-monotonic offsets, out-of-range enum
/// codes, invalid UTF-8 — returns `None`: the shard simply rescans, the
/// scan never fails on a bad blob.
fn decode_entries(bytes: &[u8]) -> Option<ShardEntries> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(8)? != MANIFEST_MAGIC {
        return None;
    }
    let n_units = r.u32()? as usize;
    let n_outcomes = r.u32()? as usize;
    let n_findings = r.u32()? as usize;
    // Size sanity before any allocation: a corrupt count must not be
    // able to request an absurd reservation.
    if r.remaining() < n_units * 20 + n_outcomes * 12 + n_findings * 18 {
        return None;
    }
    let mut e = ShardEntries::with_capacity(n_units);
    e.outcomes.reserve(n_outcomes);
    e.findings.reserve(n_findings);
    for i in 0..n_units {
        let index = r.u32()?;
        let fingerprint = r.u64()?;
        let outcome_end = r.u32()?;
        let finding_end = r.u32()?;
        let ordered = i == 0
            || (e.indices[i - 1] < index
                && e.outcome_ends[i - 1] <= outcome_end
                && e.finding_ends[i - 1] <= finding_end);
        if !ordered {
            return None;
        }
        e.indices.push(index);
        e.fingerprints.push(fingerprint);
        e.outcome_ends.push(outcome_end);
        e.finding_ends.push(finding_end);
    }
    if e.outcome_ends.last().copied().unwrap_or(0) as usize != n_outcomes
        || e.finding_ends.last().copied().unwrap_or(0) as usize != n_findings
    {
        return None;
    }
    for _ in 0..n_outcomes {
        let unit = r.u32()?;
        let sink = r.u32()?;
        let flags = r.u8()?;
        let claimed_code = r.u8()?;
        let class = class_from_code(r.u8()?)?;
        let shape = shape_from_code(r.u8()?)?;
        if flags > 7 {
            return None;
        }
        let claimed_class = if flags & 4 != 0 {
            Some(class_from_code(claimed_code)?)
        } else {
            None
        };
        e.outcomes.push(SiteOutcome {
            site: vdbench_corpus::SiteId { unit, sink },
            reported: flags & 1 != 0,
            claimed_class,
            vulnerable: flags & 2 != 0,
            class,
            shape,
        });
    }
    for _ in 0..n_findings {
        let unit = r.u32()?;
        let sink = r.u32()?;
        let has_class = r.u8()?;
        let class_byte = r.u8()?;
        let confidence = f64::from_bits(r.u64()?);
        let rationale_len = r.u32()? as usize;
        let rationale = std::str::from_utf8(r.take(rationale_len)?).ok()?;
        let class = match has_class {
            0 => None,
            1 => Some(class_from_code(class_byte)?),
            _ => return None,
        };
        e.findings.push(Finding {
            site: vdbench_corpus::SiteId { unit, sink },
            class,
            confidence,
            rationale: rationale.to_string(),
        });
    }
    if r.remaining() != 0 {
        return None;
    }
    Some(e)
}

// ---------------------------------------------------------------------------
// Per-shard processing (shared by the serial oracle and the pipeline)
// ---------------------------------------------------------------------------

/// Everything a shard worker needs; shared by reference across the
/// thread scope.
struct ShardScanContext<'a> {
    tool: &'a dyn Detector,
    mat: UnitMaterializer,
    tool_fp: u64,
    fault_fp: u64,
    shard_units: usize,
}

/// The O(1) result of one shard, in the order-independent form that
/// flows through the reorder buffer into the fold.
struct ShardOutcome {
    units: u64,
    sites: u64,
    confusion: ConfusionMatrix,
    findings: u64,
    preview: Vec<Finding>,
    rescanned: u64,
    replayed: u64,
    digest_hit: bool,
}

/// Scans one contiguous run of plans and appends its entries to `out`.
fn scan_run_into(cx: &ShardScanContext<'_>, run: &[UnitPlan], out: &mut ShardEntries) {
    let _span = vdbench_telemetry::span!("core", "scan_run", units = run.len());
    let shard = cx.mat.materialize(run);
    let findings = cx.tool.analyze_corpus(&shard);
    let outcome = score_findings(&cx.tool.name(), &shard, &findings);
    let o_base = out.outcomes.len();
    let f_base = out.findings.len();
    out.outcomes.extend(outcome.into_records());
    out.findings.extend(findings);
    // Records and findings are both in unit order; one pass over the run
    // computes every unit's end offsets.
    let (mut oc, mut fc) = (o_base, f_base);
    for p in run {
        while oc < out.outcomes.len() && out.outcomes[oc].site.unit == p.index {
            oc += 1;
        }
        while fc < out.findings.len() && out.findings[fc].site.unit == p.index {
            fc += 1;
        }
        out.indices.push(p.index);
        out.fingerprints.push(p.fingerprint);
        out.outcome_ends.push(oc as u32);
        out.finding_ends.push(fc as u32);
    }
    debug_assert_eq!(oc, out.outcomes.len(), "records beyond the run's units");
    debug_assert_eq!(fc, out.findings.len(), "findings beyond the run's units");
}

/// Fetch/replay/rescan/publish for one shard. Pure in the pipeline
/// sense: the outcome depends only on `(plans, shard_index)` and the
/// blob store, never on which worker runs it or when.
fn process_shard(cx: &ShardScanContext<'_>, shard_index: u64, plans: &[UnitPlan]) -> ShardOutcome {
    let _span = vdbench_telemetry::span!(
        "core",
        "scan_shard",
        index = shard_index,
        units = plans.len()
    );
    let key = manifest_key(cx.tool_fp, cx.fault_fp, cx.shard_units, shard_index);
    let digest = shard_digest(plans);
    let header = cache::disk_get::<ShardHeader>("mhdr", key);
    if let Some(h) = &header {
        if h.digest == digest {
            // O(1) warm replay: the header carries the whole aggregate.
            return ShardOutcome {
                units: plans.len() as u64,
                sites: h.sites,
                confusion: h.confusion,
                findings: h.findings,
                preview: h.preview.clone(),
                rescanned: 0,
                replayed: plans.len() as u64,
                digest_hit: true,
            };
        }
    }
    let old = cache::bytes_blob_get("manifest", key)
        .and_then(|bytes| decode_entries(&bytes))
        .unwrap_or_default();

    // Walk the shard in unit order, replaying matches and batching
    // contiguous misses into materialized runs.
    let mut entries = ShardEntries::with_capacity(plans.len());
    let mut pending: Vec<UnitPlan> = Vec::new();
    let mut rescanned: u64 = 0;
    let mut replayed: u64 = 0;
    for plan in plans {
        match old.find(plan.index) {
            Some(i) if old.fingerprints[i] == plan.fingerprint => {
                if !pending.is_empty() {
                    rescanned += pending.len() as u64;
                    scan_run_into(cx, &pending, &mut entries);
                    pending.clear();
                }
                entries.push_replayed(&old, i);
                replayed += 1;
            }
            _ => pending.push(*plan),
        }
    }
    if !pending.is_empty() {
        rescanned += pending.len() as u64;
        scan_run_into(cx, &pending, &mut entries);
        pending.clear();
    }

    let confusion =
        ConfusionMatrix::from_outcomes(entries.outcomes.iter().map(|r| (r.reported, r.vulnerable)));
    let preview: Vec<Finding> = entries
        .findings
        .iter()
        .take(PREVIEW_FINDINGS)
        .cloned()
        .collect();
    if rescanned > 0 {
        cache::bytes_blob_put("manifest", key, &encode_entries(&entries));
    }
    // Publish the header whenever it mirrors the entries on disk: after
    // a rewrite, or to heal a missing/corrupt header over a manifest
    // that exactly covers these plans. A *valid* header whose digest
    // merely differs (the same address read at a different corpus size)
    // is left alone — rewriting it would just thrash between sizes.
    if rescanned > 0
        || (header.is_none() && replayed == plans.len() as u64 && old.len() == plans.len())
    {
        cache::disk_put(
            "mhdr",
            key,
            &ShardHeader {
                digest,
                units: plans.len() as u64,
                sites: entries.outcomes.len() as u64,
                confusion,
                findings: entries.findings.len() as u64,
                preview: preview.clone(),
            },
        );
    }
    ShardOutcome {
        units: plans.len() as u64,
        sites: entries.outcomes.len() as u64,
        confusion,
        findings: entries.findings.len() as u64,
        preview,
        rescanned,
        replayed,
        digest_hit: false,
    }
}

/// Folds one shard into the running aggregate — always called in shard
/// order, whichever path produced the outcome.
fn absorb(report: &mut StreamedScanReport, out: ShardOutcome) {
    report.units += out.units;
    report.sites += out.sites;
    report.confusion = report.confusion + out.confusion;
    report.findings += out.findings;
    if report.preview.len() < PREVIEW_FINDINGS {
        for f in out.preview {
            if report.preview.len() >= PREVIEW_FINDINGS {
                break;
            }
            report.preview.push(f);
        }
    }
    report.rescanned += out.rescanned;
    report.replayed += out.replayed;
    report.digest_hits += u64::from(out.digest_hit);
    report.shards += 1;
}

fn empty_report(tool: &dyn Detector) -> StreamedScanReport {
    StreamedScanReport {
        tool: tool.name(),
        units: 0,
        sites: 0,
        shards: 0,
        confusion: ConfusionMatrix::default(),
        findings: 0,
        preview: Vec::new(),
        rescanned: 0,
        replayed: 0,
        digest_hits: 0,
    }
}

fn add_to_global_counters(report: &StreamedScanReport) {
    let c = counters();
    c.rescanned.add(report.rescanned);
    c.replayed.add(report.replayed);
    c.shards.add(report.shards);
    c.digest_hits.add(report.digest_hits);
}

/// The worker-pool width [`streamed_scan`] uses: the ambient rayon pool
/// size (`RAYON_NUM_THREADS` honored).
#[must_use]
pub fn default_scan_threads() -> usize {
    rayon::current_num_threads()
}

/// Runs `tool` over the corpus `builder` describes, in shards of
/// `shard_units`, on [`default_scan_threads`] shard workers. See the
/// module docs for the memory and incrementality contracts.
///
/// The returned report's confusion matrix, finding count and preview are
/// bit-identical to a monolithic `build()` + scan + score at any shard
/// size *and any thread count*; `rescanned`/`replayed`/`digest_hits` are
/// this run's local counts (the global `scan.*` counters accumulate
/// across runs).
///
/// # Panics
///
/// Panics if `shard_units` is 0.
pub fn streamed_scan(
    tool: &dyn Detector,
    builder: &CorpusBuilder,
    shard_units: usize,
) -> StreamedScanReport {
    streamed_scan_with_threads(tool, builder, shard_units, default_scan_threads())
}

/// [`streamed_scan`] with an explicit worker count (`--scan-threads`).
/// `threads == 1` runs the serial oracle; more threads run the bounded
/// producer/workers/fold pipeline. Output is identical either way.
///
/// # Panics
///
/// Panics if `shard_units` or `threads` is 0.
pub fn streamed_scan_with_threads(
    tool: &dyn Detector,
    builder: &CorpusBuilder,
    shard_units: usize,
    threads: usize,
) -> StreamedScanReport {
    assert!(threads > 0, "scan thread count must be positive");
    if threads == 1 {
        return streamed_scan_serial(tool, builder, shard_units);
    }
    assert!(shard_units > 0, "shard size must be positive");
    let mut stream = builder.stream();
    let cx = ShardScanContext {
        tool,
        mat: stream.materializer(),
        tool_fp: tool_fingerprint(tool),
        fault_fp: campaign::fault_injection().map_or(0, |c| c.fingerprint()),
        shard_units,
    };
    let _span = vdbench_telemetry::span!(
        "core",
        "streamed_scan",
        tool = tool.name(),
        units = stream.total_units(),
        shard_units = shard_units,
        threads = threads
    );
    let mut report = empty_report(tool);
    // Both channels are bounded by the worker count, so plans, in-flight
    // shards and undrained outcomes together hold O(threads) shards —
    // the flat-RSS guarantee survives parallelism. (Declared outside the
    // scope: scoped threads borrow the receiver mutex.)
    let (job_tx, job_rx) = sync_channel::<(u64, Vec<UnitPlan>)>(threads);
    let job_rx = Mutex::new(job_rx);
    let (out_tx, out_rx) = sync_channel::<(u64, ShardOutcome)>(threads);
    std::thread::scope(|s| {
        s.spawn(move || {
            let _span = vdbench_telemetry::span!("core", "plan_producer");
            let mut shard_index: u64 = 0;
            loop {
                let plans = stream.next_plans(shard_units);
                if plans.is_empty() {
                    break;
                }
                if job_tx.send((shard_index, plans)).is_err() {
                    break;
                }
                shard_index += 1;
            }
        });
        let cx = &cx;
        let job_rx = &job_rx;
        for worker in 0..threads {
            let out_tx = out_tx.clone();
            s.spawn(move || {
                let _span = vdbench_telemetry::span!("core", "shard_worker", worker = worker);
                loop {
                    let job = job_rx.lock().expect("plan channel poisoned").recv();
                    let Ok((shard_index, plans)) = job else { break };
                    let out = process_shard(cx, shard_index, &plans);
                    if out_tx.send((shard_index, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(out_tx);
        // In-order fold: outcomes arrive in completion order and drain
        // through a reorder buffer keyed on shard index, so absorption
        // order — and therefore preview, counts and stdout — matches the
        // serial oracle exactly.
        let _span = vdbench_telemetry::span!("core", "shard_fold");
        let mut next: u64 = 0;
        let mut reorder: BTreeMap<u64, ShardOutcome> = BTreeMap::new();
        while let Ok((shard_index, out)) = out_rx.recv() {
            reorder.insert(shard_index, out);
            while let Some(ready) = reorder.remove(&next) {
                absorb(&mut report, ready);
                next += 1;
            }
        }
        debug_assert!(reorder.is_empty(), "reorder buffer drained");
    });
    add_to_global_counters(&report);
    report
}

/// The retained serial oracle: one thread walks plans, processes each
/// shard and folds it, with no channels in between. The pipeline is
/// tested byte-identical against this path, and `--scan-threads 1`
/// resolves to it.
///
/// # Panics
///
/// Panics if `shard_units` is 0.
pub fn streamed_scan_serial(
    tool: &dyn Detector,
    builder: &CorpusBuilder,
    shard_units: usize,
) -> StreamedScanReport {
    assert!(shard_units > 0, "shard size must be positive");
    let mut stream = builder.stream();
    let cx = ShardScanContext {
        tool,
        mat: stream.materializer(),
        tool_fp: tool_fingerprint(tool),
        fault_fp: campaign::fault_injection().map_or(0, |c| c.fingerprint()),
        shard_units,
    };
    let _span = vdbench_telemetry::span!(
        "core",
        "streamed_scan",
        tool = tool.name(),
        units = stream.total_units(),
        shard_units = shard_units,
        threads = 1
    );
    let mut report = empty_report(tool);
    let mut shard_index: u64 = 0;
    loop {
        let plans = stream.next_plans(shard_units);
        if plans.is_empty() {
            break;
        }
        let out = process_shard(&cx, shard_index, &plans);
        absorb(&mut report, out);
        shard_index += 1;
    }
    add_to_global_counters(&report);
    report
}

/// One measured point of the `vdbench scale` curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Corpus size at this point.
    pub units: u64,
    /// Ground-truth sites scored.
    pub sites: u64,
    /// Shards consumed.
    pub shards: u64,
    /// Wall-clock time of the streamed scan.
    pub wall_ms: u64,
    /// Process peak RSS (`VmHWM`) after the scan, in kB; 0 where procfs
    /// is unavailable. Monotonic across points, which is why the scale
    /// bench measures unit counts in ascending order.
    pub peak_rss_kb: u64,
    /// Units materialized and scanned at this point.
    pub rescanned: u64,
    /// Units replayed from manifests at this point.
    pub replayed: u64,
    /// Shards that replayed O(1) from their header digest.
    pub digest_hits: u64,
}

/// The `BENCH_scale.json` document: units-vs-wall-time and peak-RSS
/// curves for one tool, plus an optional delta-rescan measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRecord {
    /// Tool under measurement.
    pub tool: String,
    /// Generator seed.
    pub seed: u64,
    /// Shard size used throughout.
    pub shard_units: u64,
    /// Shard-worker threads used throughout.
    pub threads: u64,
    /// Measured curve, ascending unit counts.
    pub points: Vec<ScalePoint>,
    /// Delta rerun: the largest point's corpus grown by `delta_units`,
    /// rescanned incrementally.
    pub delta: Option<ScaleDelta>,
}

/// The delta-rescan measurement of a [`ScaleRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleDelta {
    /// Corpus size before growth.
    pub base_units: u64,
    /// Corpus size after growth.
    pub grown_units: u64,
    /// Units actually rescanned (the growth tail — and only it, when the
    /// base run's manifests are warm).
    pub rescanned: u64,
    /// Units replayed from the base run's manifests.
    pub replayed: u64,
    /// Shards that replayed O(1) from their header digest (every shard
    /// but the growth tail's, when the base run is warm).
    pub digest_hits: u64,
    /// Wall-clock time of the delta rerun.
    pub wall_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::set_disk_cache;
    use std::sync::Mutex;
    use vdbench_detectors::{
        score_detector, FaultConfig, FaultPlan, FaultProfile, FaultyDetector, PatternScanner,
    };

    /// The disk-tier configuration is process-global; serialize the
    /// tests that repoint it.
    fn disk_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("scale test lock poisoned")
    }

    fn tmp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vdbench-scale-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Blob files of one kind in a store directory.
    fn blobs_of_kind(dir: &std::path::Path, kind: &str) -> Vec<std::path::PathBuf> {
        let marker = format!("-{kind}-");
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.contains(&marker))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn streamed_scan_matches_monolithic_at_any_shard_size() {
        let _guard = disk_lock();
        set_disk_cache(None);
        let builder = CorpusBuilder::new().units(150).seed(0x5CA1E).clone();
        let corpus = builder.build();
        let tool = PatternScanner::aggressive();
        let whole = score_detector(&tool, &corpus);
        let findings = tool.analyze_corpus(&corpus);
        for shard_units in [1usize, 17, 64, 150, 4096] {
            let report = streamed_scan(&tool, &builder, shard_units);
            assert_eq!(report.confusion, whole.confusion(), "shard {shard_units}");
            assert_eq!(report.units, 150);
            assert_eq!(report.sites, whole.records().len() as u64);
            assert_eq!(report.findings, findings.len() as u64);
            assert_eq!(
                report.preview.as_slice(),
                &findings[..PREVIEW_FINDINGS.min(findings.len())]
            );
            assert_eq!(report.rescanned, 150, "disk off: every unit rescans");
            assert_eq!(report.replayed, 0);
            assert_eq!(report.digest_hits, 0);
        }
    }

    #[test]
    fn pipelined_scan_matches_serial_oracle() {
        let _guard = disk_lock();
        set_disk_cache(None);
        let clean: Box<dyn Detector> = Box::new(PatternScanner::aggressive());
        let flaky: Box<dyn Detector> = Box::new(FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::new(FaultConfig::new(FaultProfile::Flaky, 0xFA7)),
        ));
        for (profile, tool) in [("none", &clean), ("flaky", &flaky)] {
            let builder = CorpusBuilder::new().units(137).seed(0x9192).clone();
            for shard_units in [1usize, 13, 64, 137, 4096] {
                let oracle = streamed_scan_serial(tool.as_ref(), &builder, shard_units);
                for threads in [1usize, 2, 8] {
                    let piped =
                        streamed_scan_with_threads(tool.as_ref(), &builder, shard_units, threads);
                    assert_eq!(
                        piped, oracle,
                        "fault={profile} shard={shard_units} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelined_scan_matches_serial_oracle_with_warm_store() {
        let _guard = disk_lock();
        let dir = tmp_store("pipe-warm");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let base = CorpusBuilder::new().units(100).seed(0xBEA7).clone();
        let cold = streamed_scan_with_threads(&tool, &base, 16, 4);
        assert_eq!(
            (cold.rescanned, cold.replayed, cold.digest_hits),
            (100, 0, 0)
        );
        // Grow the corpus so the warm run mixes digest hits, a partial
        // per-unit replay and a fresh rescan — on both paths.
        let grown = CorpusBuilder::new().units(150).seed(0xBEA7).clone();
        let serial = streamed_scan_serial(&tool, &grown, 16);
        // The serial warm run rewrote the tail; restore a store where the
        // pipelined run sees the same starting state.
        let _ = std::fs::remove_dir_all(&dir);
        set_disk_cache(Some(dir.clone()));
        let recold = streamed_scan_with_threads(&tool, &base, 16, 4);
        assert_eq!(recold.rescanned, 100);
        let piped = streamed_scan_with_threads(&tool, &grown, 16, 4);
        assert_eq!(piped, serial);
        assert_eq!(piped.rescanned, 50);
        assert_eq!(piped.replayed, 100);
        assert_eq!(piped.digest_hits, 6, "six of seven base shards digest-hit");
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_rerun_replays_every_unit_via_digests() {
        let _guard = disk_lock();
        let dir = tmp_store("rerun");
        set_disk_cache(Some(dir.clone()));
        let builder = CorpusBuilder::new().units(90).seed(0xD1FF).clone();
        let tool = PatternScanner::aggressive();
        let cold = streamed_scan(&tool, &builder, 32);
        assert_eq!(cold.rescanned, 90);
        assert_eq!(cold.replayed, 0);
        assert_eq!(cold.digest_hits, 0);
        let warm = streamed_scan(&tool, &builder, 32);
        assert_eq!(warm.rescanned, 0, "identical rerun rescans nothing");
        assert_eq!(warm.replayed, 90);
        assert_eq!(
            warm.digest_hits, warm.shards,
            "identical rerun folds every shard from its header"
        );
        assert_eq!(warm.confusion, cold.confusion);
        assert_eq!(warm.preview, cold.preview);
        assert_eq!(warm.findings, cold.findings);
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn growing_by_k_units_rescans_exactly_k_and_misses_only_tail_digest() {
        let _guard = disk_lock();
        let dir = tmp_store("delta");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let base = CorpusBuilder::new().units(70).seed(0x9E0).clone();
        let _ = streamed_scan(&tool, &base, 32);
        let grown = CorpusBuilder::new().units(95).seed(0x9E0).clone();
        let delta = streamed_scan(&tool, &grown, 32);
        assert_eq!(delta.rescanned, 25, "exactly the k new units rescan");
        assert_eq!(delta.replayed, 70);
        assert_eq!(
            delta.digest_hits, 2,
            "only the growth tail's shard misses its digest"
        );
        // The incremental result matches a from-scratch monolithic scan.
        let whole = score_detector(&tool, &grown.build());
        assert_eq!(delta.confusion, whole.confusion());
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_seed_invalidates_every_manifest_entry() {
        let _guard = disk_lock();
        let dir = tmp_store("seedmove");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let a = CorpusBuilder::new().units(40).seed(1).clone();
        let _ = streamed_scan(&tool, &a, 16);
        let b = CorpusBuilder::new().units(40).seed(2).clone();
        let moved = streamed_scan(&tool, &b, 16);
        assert_eq!(moved.rescanned, 40, "new seed, nothing replays");
        assert_eq!(moved.replayed, 0);
        assert_eq!(moved.digest_hits, 0);
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_falls_back_to_per_unit_matching_and_heals() {
        let _guard = disk_lock();
        let dir = tmp_store("hdrcorrupt");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let builder = CorpusBuilder::new().units(90).seed(0xC0DE).clone();
        let cold = streamed_scan(&tool, &builder, 32);
        let headers = blobs_of_kind(&dir, "mhdr");
        assert_eq!(headers.len(), 3);
        for path in &headers {
            std::fs::write(path, b"{not json at all").unwrap();
        }
        let fallback = streamed_scan(&tool, &builder, 32);
        assert_eq!(fallback.rescanned, 0, "entries still match per unit");
        assert_eq!(fallback.replayed, 90);
        assert_eq!(fallback.digest_hits, 0, "no header, no O(1) path");
        assert_eq!(fallback.confusion, cold.confusion);
        assert_eq!(fallback.preview, cold.preview);
        // The full-coverage fallback republished the headers...
        let healed = streamed_scan(&tool, &builder, 32);
        assert_eq!(healed.digest_hits, 3, "headers healed on the previous run");
        assert_eq!(healed.confusion, cold.confusion);
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_rescans_its_shard_without_failing() {
        let _guard = disk_lock();
        let dir = tmp_store("mancorrupt");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let builder = CorpusBuilder::new().units(90).seed(0x5EED).clone();
        let cold = streamed_scan(&tool, &builder, 32);
        // Destroy shard 0's manifest *and* header: the digest must not
        // rescue a shard whose entries are gone, and the scan must not
        // fail — it rescans exactly that shard.
        assert_eq!(blobs_of_kind(&dir, "manifest").len(), 3);
        let victim_key = format!("{:016x}", manifest_key(tool_fingerprint(&tool), 0, 32, 0));
        let victim_blob = |kind: &str| {
            blobs_of_kind(&dir, kind)
                .into_iter()
                .find(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.contains(&victim_key))
                })
                .expect("shard 0 blob exists")
        };
        std::fs::write(victim_blob("manifest"), [0xFFu8; 7]).unwrap();
        std::fs::remove_file(victim_blob("mhdr")).unwrap();
        let partial = streamed_scan(&tool, &builder, 32);
        assert_eq!(partial.rescanned, 32, "only the corrupted shard rescans");
        assert_eq!(partial.replayed, 58);
        assert_eq!(partial.digest_hits, 2);
        assert_eq!(partial.confusion, cold.confusion);
        assert_eq!(partial.findings, cold.findings);
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_codec_roundtrips_and_rejects_corruption() {
        let _guard = disk_lock();
        set_disk_cache(None);
        let tool = PatternScanner::aggressive();
        let builder = CorpusBuilder::new().units(24).seed(0xC0DEC).clone();
        let mut stream = builder.stream();
        let cx = ShardScanContext {
            tool: &tool,
            mat: stream.materializer(),
            tool_fp: tool_fingerprint(&tool),
            fault_fp: 0,
            shard_units: 24,
        };
        let plans = stream.next_plans(24);
        let mut entries = ShardEntries::with_capacity(plans.len());
        scan_run_into(&cx, &plans, &mut entries);
        assert_eq!(entries.len(), 24);
        assert!(!entries.outcomes.is_empty());
        let bytes = encode_entries(&entries);
        assert_eq!(decode_entries(&bytes).as_ref(), Some(&entries));

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0x55;
        assert_eq!(decode_entries(&bad), None);
        // Truncation anywhere must be a miss, never a panic.
        for cut in [0, 7, 12, 19, 20, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(decode_entries(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_entries(&padded), None);
        // Out-of-range enum code in the first outcome's class byte.
        let mut bad_enum = bytes.clone();
        let class_at = 20 + entries.len() * 20 + 10;
        bad_enum[class_at] = 0xEE;
        assert_eq!(decode_entries(&bad_enum), None);
    }

    #[test]
    fn replayed_entries_reencode_identically() {
        // A shard rebuilt from replayed entries must publish the same
        // bytes a fresh scan would — otherwise partial replays would
        // churn the store.
        let _guard = disk_lock();
        set_disk_cache(None);
        let tool = PatternScanner::aggressive();
        let builder = CorpusBuilder::new().units(30).seed(0xAB).clone();
        let mut stream = builder.stream();
        let cx = ShardScanContext {
            tool: &tool,
            mat: stream.materializer(),
            tool_fp: tool_fingerprint(&tool),
            fault_fp: 0,
            shard_units: 30,
        };
        let plans = stream.next_plans(30);
        let mut fresh = ShardEntries::with_capacity(plans.len());
        scan_run_into(&cx, &plans, &mut fresh);
        let mut replayed = ShardEntries::with_capacity(plans.len());
        for i in 0..fresh.len() {
            replayed.push_replayed(&fresh, i);
        }
        assert_eq!(replayed, fresh);
        assert_eq!(encode_entries(&replayed), encode_entries(&fresh));
    }
}
