//! Million-unit campaigns: streamed generation, fixed-memory sharded
//! scanning, and incremental delta rescans.
//!
//! [`streamed_scan`] drives one detection tool over a
//! [`CorpusBuilder`]-described corpus **without ever materializing it**:
//! the [`vdbench_corpus::CorpusStream`] yields bounded shards, each shard
//! is scanned and scored, and the per-shard confusion partials are folded
//! into one running [`ConfusionMatrix`] — peak memory is a function of
//! the shard size, not the corpus size (the `vdbench scale` bench and
//! the CI `scale-smoke` job assert the resulting flat RSS curve).
//!
//! # Incrementality contract
//!
//! Each shard persists a *manifest* in the blob store (kind
//! `"manifest"`): one entry per unit holding the unit's content
//! fingerprint ([`vdbench_corpus::UnitPlan::fingerprint`] — stable
//! across corpus growth, moved by any generator-knob or seed change)
//! together with its scored [`SiteOutcome`]s and raw [`Finding`]s. On a
//! later run, a unit whose fingerprint matches its manifest entry
//! *replays* the stored score; only units whose fingerprints changed (or
//! that are new) are materialized and rescanned. Growing a corpus by `k`
//! units therefore rescans exactly `k`, and an identical rerun rescans
//! none — `scan.units.{rescanned,replayed}` on the telemetry registry
//! (and the [`StreamedScanReport`] fields) count both paths.
//!
//! Manifests are addressed per `(tool, fault, shard size, shard index)`,
//! but matching is **per unit**, so replay/rescan totals are independent
//! of the shard size used to write the manifest being read — a manifest
//! written at `--shard-units 512` simply never aliases one written at
//! `4096`. With the disk tier off, every unit rescans (the stream path
//! still runs in bounded memory).

use crate::cache::{self, tool_fingerprint};
use crate::campaign;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use vdbench_corpus::{CorpusBuilder, CorpusStream, UnitPlan};
use vdbench_detectors::{score_findings, Detector, Finding, SiteOutcome};
use vdbench_metrics::ConfusionMatrix;
use vdbench_telemetry::registry::Counter;

/// Default shard size: large enough to saturate the rayon pool per
/// shard, small enough that a shard of MiniWeb units plus its findings
/// stays a few tens of MB — the knob behind the flat-RSS guarantee.
pub const DEFAULT_SHARD_UNITS: usize = 4096;

/// How many findings the report retains verbatim (the CLI preview);
/// everything else is counted, not kept — the aggregate must stay O(1)
/// in corpus size.
const PREVIEW_FINDINGS: usize = 3;

/// The `scan.*` counters on the process-wide telemetry registry.
struct ScaleCounters {
    rescanned: Arc<Counter>,
    replayed: Arc<Counter>,
    shards: Arc<Counter>,
}

fn counters() -> &'static ScaleCounters {
    static COUNTERS: OnceLock<ScaleCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = vdbench_telemetry::registry::global();
        ScaleCounters {
            rescanned: reg.counter("scan.units.rescanned"),
            replayed: reg.counter("scan.units.replayed"),
            shards: reg.counter("scan.shards"),
        }
    })
}

/// One unit's persisted scan result inside a shard manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct UnitManifestEntry {
    /// Global unit index.
    index: u32,
    /// The unit's content fingerprint at scan time.
    fingerprint: u64,
    /// Scored ground-truth records for the unit's sites.
    outcomes: Vec<SiteOutcome>,
    /// The tool's raw findings on the unit (site order).
    findings: Vec<Finding>,
}

/// Aggregate of one streamed scan — O(1) in corpus size.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedScanReport {
    /// The tool's display name.
    pub tool: String,
    /// Units streamed.
    pub units: u64,
    /// Ground-truth sites scored.
    pub sites: u64,
    /// Shards the stream was consumed in.
    pub shards: u64,
    /// Pooled confusion matrix — identical to scoring the whole corpus
    /// monolithically (per-shard partials merge associatively).
    pub confusion: ConfusionMatrix,
    /// Total findings the tool reported.
    pub findings: u64,
    /// The first few findings, verbatim (corpus order).
    pub preview: Vec<Finding>,
    /// Units materialized and scanned this run.
    pub rescanned: u64,
    /// Units replayed from a fingerprint-matching manifest entry.
    pub replayed: u64,
}

/// Blob-store key of one shard manifest. The corpus seed and generator
/// knobs are deliberately *not* part of the address — they live in the
/// per-unit fingerprints, so a changed workload under the same address
/// simply fails every fingerprint match and rescans (correct, just
/// cold) instead of multiplying addresses.
fn manifest_key(tool_fp: u64, fault_fp: u64, shard_units: usize, shard_index: u64) -> u64 {
    let mut h = cache::fnv1a_key(b"manifest-v1");
    for word in [tool_fp, fault_fp, shard_units as u64, shard_index] {
        let mut bytes = Vec::with_capacity(8);
        bytes.extend_from_slice(&word.to_le_bytes());
        h = cache::fnv1a_key(&{
            let mut acc = h.to_le_bytes().to_vec();
            acc.extend_from_slice(&bytes);
            acc
        });
    }
    h
}

/// Scans the plans of one contiguous run, returning a manifest entry per
/// unit (plan order).
fn scan_run(
    tool: &dyn Detector,
    stream: &CorpusStream,
    run: &[UnitPlan],
) -> Vec<UnitManifestEntry> {
    let shard = stream.materialize(run);
    let findings = tool.analyze_corpus(&shard);
    let outcome = score_findings(&tool.name(), &shard, &findings);
    let base = run[0].index;
    let mut entries: Vec<UnitManifestEntry> = run
        .iter()
        .map(|p| UnitManifestEntry {
            index: p.index,
            fingerprint: p.fingerprint,
            outcomes: Vec::new(),
            findings: Vec::new(),
        })
        .collect();
    for rec in outcome.records() {
        entries[(rec.site.unit - base) as usize]
            .outcomes
            .push(rec.clone());
    }
    for f in findings {
        entries[(f.site.unit - base) as usize].findings.push(f);
    }
    entries
}

/// Runs `tool` over the corpus `builder` describes, in shards of
/// `shard_units`, replaying fingerprint-matching units from the blob
/// store's shard manifests. See the module docs for the memory and
/// incrementality contracts.
///
/// The returned report's confusion matrix, finding count and preview are
/// bit-identical to a monolithic `build()` + scan + score at any shard
/// size; `rescanned`/`replayed` are this run's local counts (the global
/// `scan.units.*` counters accumulate across runs).
///
/// # Panics
///
/// Panics if `shard_units` is 0.
pub fn streamed_scan(
    tool: &dyn Detector,
    builder: &CorpusBuilder,
    shard_units: usize,
) -> StreamedScanReport {
    assert!(shard_units > 0, "shard size must be positive");
    let tool_fp = tool_fingerprint(tool);
    let fault_fp = campaign::fault_injection().map_or(0, |c| c.fingerprint());
    let mut stream = builder.stream();
    let _span = vdbench_telemetry::span!(
        "core",
        "streamed_scan",
        tool = tool.name(),
        units = stream.total_units(),
        shard_units = shard_units
    );
    let mut report = StreamedScanReport {
        tool: tool.name(),
        units: 0,
        sites: 0,
        shards: 0,
        confusion: ConfusionMatrix::default(),
        findings: 0,
        preview: Vec::new(),
        rescanned: 0,
        replayed: 0,
    };
    let mut shard_index: u64 = 0;
    loop {
        let plans = stream.next_plans(shard_units);
        if plans.is_empty() {
            break;
        }
        let _span = vdbench_telemetry::span!(
            "core",
            "scan_shard",
            index = shard_index,
            units = plans.len()
        );
        let key = manifest_key(tool_fp, fault_fp, shard_units, shard_index);
        let old: std::collections::BTreeMap<u32, UnitManifestEntry> =
            cache::disk_get::<Vec<UnitManifestEntry>>("manifest", key)
                .map(|entries| entries.into_iter().map(|e| (e.index, e)).collect())
                .unwrap_or_default();

        // Walk the shard in unit order, replaying matches and batching
        // contiguous misses into materialized runs.
        let mut entries: Vec<UnitManifestEntry> = Vec::with_capacity(plans.len());
        let mut pending: Vec<UnitPlan> = Vec::new();
        let mut rescanned_here: u64 = 0;
        for plan in &plans {
            match old.get(&plan.index) {
                Some(e) if e.fingerprint == plan.fingerprint => {
                    if !pending.is_empty() {
                        rescanned_here += pending.len() as u64;
                        entries.extend(scan_run(tool, &stream, &pending));
                        pending.clear();
                    }
                    entries.push(e.clone());
                    report.replayed += 1;
                }
                _ => pending.push(*plan),
            }
        }
        if !pending.is_empty() {
            rescanned_here += pending.len() as u64;
            entries.extend(scan_run(tool, &stream, &pending));
            pending.clear();
        }
        report.rescanned += rescanned_here;

        // Absorb the shard into the O(1) aggregate.
        for e in &entries {
            report.sites += e.outcomes.len() as u64;
            report.confusion = report.confusion
                + ConfusionMatrix::from_outcomes(
                    e.outcomes.iter().map(|r| (r.reported, r.vulnerable)),
                );
            report.findings += e.findings.len() as u64;
            for f in &e.findings {
                if report.preview.len() < PREVIEW_FINDINGS {
                    report.preview.push(f.clone());
                }
            }
        }
        report.units += plans.len() as u64;
        report.shards += 1;
        if rescanned_here > 0 {
            cache::disk_put("manifest", key, &entries);
        }
        shard_index += 1;
    }
    let c = counters();
    c.rescanned.add(report.rescanned);
    c.replayed.add(report.replayed);
    c.shards.add(report.shards);
    report
}

/// One measured point of the `vdbench scale` curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Corpus size at this point.
    pub units: u64,
    /// Ground-truth sites scored.
    pub sites: u64,
    /// Shards consumed.
    pub shards: u64,
    /// Wall-clock time of the streamed scan.
    pub wall_ms: u64,
    /// Process peak RSS (`VmHWM`) after the scan, in kB; 0 where procfs
    /// is unavailable. Monotonic across points, which is why the scale
    /// bench measures unit counts in ascending order.
    pub peak_rss_kb: u64,
    /// Units materialized and scanned at this point.
    pub rescanned: u64,
    /// Units replayed from manifests at this point.
    pub replayed: u64,
}

/// The `BENCH_scale.json` document: units-vs-wall-time and peak-RSS
/// curves for one tool, plus an optional delta-rescan measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRecord {
    /// Tool under measurement.
    pub tool: String,
    /// Generator seed.
    pub seed: u64,
    /// Shard size used throughout.
    pub shard_units: u64,
    /// Measured curve, ascending unit counts.
    pub points: Vec<ScalePoint>,
    /// Delta rerun: the largest point's corpus grown by `delta_units`,
    /// rescanned incrementally.
    pub delta: Option<ScaleDelta>,
}

/// The delta-rescan measurement of a [`ScaleRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleDelta {
    /// Corpus size before growth.
    pub base_units: u64,
    /// Corpus size after growth.
    pub grown_units: u64,
    /// Units actually rescanned (the growth tail — and only it, when the
    /// base run's manifests are warm).
    pub rescanned: u64,
    /// Units replayed from the base run's manifests.
    pub replayed: u64,
    /// Wall-clock time of the delta rerun.
    pub wall_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::set_disk_cache;
    use std::sync::Mutex;
    use vdbench_detectors::{score_detector, PatternScanner};

    /// The disk-tier configuration is process-global; serialize the
    /// tests that repoint it.
    fn disk_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("scale test lock poisoned")
    }

    fn tmp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vdbench-scale-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn streamed_scan_matches_monolithic_at_any_shard_size() {
        let _guard = disk_lock();
        set_disk_cache(None);
        let builder = CorpusBuilder::new().units(150).seed(0x5CA1E).clone();
        let corpus = builder.build();
        let tool = PatternScanner::aggressive();
        let whole = score_detector(&tool, &corpus);
        let findings = tool.analyze_corpus(&corpus);
        for shard_units in [1usize, 17, 64, 150, 4096] {
            let report = streamed_scan(&tool, &builder, shard_units);
            assert_eq!(report.confusion, whole.confusion(), "shard {shard_units}");
            assert_eq!(report.units, 150);
            assert_eq!(report.sites, whole.records().len() as u64);
            assert_eq!(report.findings, findings.len() as u64);
            assert_eq!(
                report.preview.as_slice(),
                &findings[..PREVIEW_FINDINGS.min(findings.len())]
            );
            assert_eq!(report.rescanned, 150, "disk off: every unit rescans");
            assert_eq!(report.replayed, 0);
        }
    }

    #[test]
    fn identical_rerun_replays_every_unit() {
        let _guard = disk_lock();
        let dir = tmp_store("rerun");
        set_disk_cache(Some(dir.clone()));
        let builder = CorpusBuilder::new().units(90).seed(0xD1FF).clone();
        let tool = PatternScanner::aggressive();
        let cold = streamed_scan(&tool, &builder, 32);
        assert_eq!(cold.rescanned, 90);
        assert_eq!(cold.replayed, 0);
        let warm = streamed_scan(&tool, &builder, 32);
        assert_eq!(warm.rescanned, 0, "identical rerun rescans nothing");
        assert_eq!(warm.replayed, 90);
        assert_eq!(warm.confusion, cold.confusion);
        assert_eq!(warm.preview, cold.preview);
        assert_eq!(warm.findings, cold.findings);
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn growing_by_k_units_rescans_exactly_k() {
        let _guard = disk_lock();
        let dir = tmp_store("delta");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let base = CorpusBuilder::new().units(70).seed(0x9E0).clone();
        let _ = streamed_scan(&tool, &base, 32);
        let grown = CorpusBuilder::new().units(95).seed(0x9E0).clone();
        let delta = streamed_scan(&tool, &grown, 32);
        assert_eq!(delta.rescanned, 25, "exactly the k new units rescan");
        assert_eq!(delta.replayed, 70);
        // The incremental result matches a from-scratch monolithic scan.
        let whole = score_detector(&tool, &grown.build());
        assert_eq!(delta.confusion, whole.confusion());
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_seed_invalidates_every_manifest_entry() {
        let _guard = disk_lock();
        let dir = tmp_store("seedmove");
        set_disk_cache(Some(dir.clone()));
        let tool = PatternScanner::aggressive();
        let a = CorpusBuilder::new().units(40).seed(1).clone();
        let _ = streamed_scan(&tool, &a, 16);
        let b = CorpusBuilder::new().units(40).seed(2).clone();
        let moved = streamed_scan(&tool, &b, 16);
        assert_eq!(moved.rescanned, 40, "new seed, nothing replays");
        assert_eq!(moved.replayed, 0);
        set_disk_cache(None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
