//! Tool rankings induced by metrics, and how much they disagree.
//!
//! The paper's central empirical point: **the choice of metric changes
//! which tool wins**. This module builds metric-induced tool rankings,
//! quantifies pairwise ranking disagreement between metrics (Table 5) and
//! measures ranking stability under workload subsampling (Fig. 3).

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use vdbench_detectors::DetectionOutcome;
use vdbench_mcda::ranking::ranking_from_scores;
use vdbench_metrics::metric::{Metric, MetricExt};
use vdbench_metrics::MetricId;
use vdbench_stats::correlation::kendall_tau;
use vdbench_stats::SeededRng;

/// A metric-induced ranking of tools.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingTable {
    /// The metric that induced the ranking.
    pub metric: MetricId,
    /// Tool names in outcome order.
    pub tool_names: Vec<String>,
    /// Raw metric values per tool (`NaN` where undefined).
    pub values: Vec<f64>,
    /// Tool indices ordered best → worst. Tools with undefined metric
    /// values rank last.
    pub ranking: Vec<usize>,
}

impl RankingTable {
    /// The winning tool's name.
    pub fn winner(&self) -> &str {
        &self.tool_names[self.ranking[0]]
    }

    /// Rank position (0 = best) of each tool, parallel to `tool_names`.
    pub fn positions(&self) -> Vec<usize> {
        vdbench_mcda::ranking::positions_from_ranking(&self.ranking)
    }
}

/// Ranks tools by a metric computed on their pooled confusion matrices.
///
/// ```
/// use vdbench_core::ranking::rank_by_metric;
/// use vdbench_corpus::CorpusBuilder;
/// use vdbench_detectors::{score_detector, ProfileTool};
/// use vdbench_metrics::basic::Recall;
///
/// let corpus = CorpusBuilder::new().units(200).seed(4).build();
/// let outcomes = vec![
///     score_detector(&ProfileTool::new("weak", 0.4, 0.05, 1), &corpus),
///     score_detector(&ProfileTool::new("strong", 0.95, 0.05, 2), &corpus),
/// ];
/// let table = rank_by_metric(&outcomes, &Recall)?;
/// assert_eq!(table.winner(), "strong");
/// # Ok::<(), vdbench_core::CoreError>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::NoData`] for an empty outcome slice.
pub fn rank_by_metric(outcomes: &[DetectionOutcome], metric: &dyn Metric) -> Result<RankingTable> {
    if outcomes.is_empty() {
        return Err(CoreError::NoData {
            reason: "no tool outcomes to rank",
        });
    }
    let values: Vec<f64> = outcomes
        .iter()
        .map(|o| metric.compute_or_nan(&o.confusion()))
        .collect();
    let oriented: Vec<f64> = values
        .iter()
        .map(|v| {
            if v.is_nan() {
                f64::NEG_INFINITY // undefined ranks last
            } else if metric.higher_is_better() {
                *v
            } else {
                -*v
            }
        })
        .collect();
    Ok(RankingTable {
        metric: metric.id(),
        tool_names: outcomes.iter().map(|o| o.tool().to_string()).collect(),
        values,
        ranking: ranking_from_scores(&oriented, true),
    })
}

/// Pairwise Kendall τ between the tool rankings induced by each metric —
/// the ranking-disagreement matrix of Table 5. `NaN` where τ is undefined
/// (fully tied rankings).
///
/// # Errors
///
/// Returns [`CoreError::NoData`] when there are fewer than two outcomes.
pub fn ranking_disagreement(
    outcomes: &[DetectionOutcome],
    metrics: &[Box<dyn Metric>],
) -> Result<Vec<Vec<f64>>> {
    if outcomes.len() < 2 {
        return Err(CoreError::NoData {
            reason: "need at least two tools to compare rankings",
        });
    }
    let positions: Vec<Vec<f64>> = metrics
        .iter()
        .map(|m| {
            rank_by_metric(outcomes, m.as_ref()).map(|t| {
                t.positions()
                    .iter()
                    .map(|&p| p as f64)
                    .collect::<Vec<f64>>()
            })
        })
        .collect::<Result<_>>()?;
    let n = metrics.len();
    let mut matrix = vec![vec![1.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let tau = kendall_tau(&positions[i], &positions[j]).unwrap_or(f64::NAN);
            matrix[i][j] = tau;
            matrix[j][i] = tau;
        }
    }
    Ok(matrix)
}

/// Ranking stability under workload subsampling (Fig. 3 primitive): mean
/// Kendall τ between the full-workload tool ranking and rankings computed
/// on random subsamples of the cases.
///
/// # Errors
///
/// Returns [`CoreError::NoData`] for empty outcomes and
/// [`CoreError::InvalidConfig`] for a fraction outside `(0, 1]` or zero
/// replicates.
pub fn subsample_stability(
    outcomes: &[DetectionOutcome],
    metric: &dyn Metric,
    fraction: f64,
    replicates: usize,
    rng: &mut SeededRng,
) -> Result<f64> {
    if outcomes.is_empty() {
        return Err(CoreError::NoData {
            reason: "no tool outcomes",
        });
    }
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(CoreError::InvalidConfig {
            reason: format!("subsample fraction {fraction} outside (0, 1]"),
        });
    }
    if replicates == 0 {
        return Err(CoreError::InvalidConfig {
            reason: "zero replicates".into(),
        });
    }
    // Degraded campaigns can hand this function a mix of full and empty
    // outcomes (failed scans score as empty records): size the subsample
    // on the largest record set — `confusion_for_indices` ignores
    // out-of-range indices on the shorter ones — and refuse outright when
    // no tool produced enough cases to subsample (the old
    // `clamp(2, cases)` paniced on `cases < 2`).
    let cases = outcomes
        .iter()
        .map(|o| o.records().len())
        .max()
        .unwrap_or(0);
    if cases < 2 {
        return Err(CoreError::NoData {
            reason: "fewer than two scored cases to subsample",
        });
    }
    let k = ((cases as f64 * fraction).round() as usize).clamp(2, cases);
    let full = rank_by_metric(outcomes, metric)?;
    let full_pos: Vec<f64> = full.positions().iter().map(|&p| p as f64).collect();

    let mut taus = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let idx = rng.sample_without_replacement(cases, k);
        let oriented: Vec<f64> = outcomes
            .iter()
            .map(|o| {
                let cm = o.confusion_for_indices(&idx);
                let v = metric.compute_or_nan(&cm);
                if v.is_nan() {
                    f64::NEG_INFINITY
                } else if metric.higher_is_better() {
                    v
                } else {
                    -v
                }
            })
            .collect();
        let sub_ranking = ranking_from_scores(&oriented, true);
        let sub_pos: Vec<f64> = vdbench_mcda::ranking::positions_from_ranking(&sub_ranking)
            .iter()
            .map(|&p| p as f64)
            .collect();
        if let Ok(tau) = kendall_tau(&full_pos, &sub_pos) {
            taus.push(tau);
        }
    }
    if taus.is_empty() {
        return Err(CoreError::NoData {
            reason: "no defined subsample rankings",
        });
    }
    Ok(taus.iter().sum::<f64>() / taus.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_corpus::CorpusBuilder;
    use vdbench_detectors::{score_detector, ProfileTool};
    use vdbench_metrics::basic::{Fallout, Precision, Recall};
    use vdbench_metrics::composite::Informedness;

    fn outcomes() -> Vec<DetectionOutcome> {
        let corpus = CorpusBuilder::new()
            .units(500)
            .vulnerability_density(0.3)
            .seed(71)
            .build();
        // A precision-oriented tool and a recall-oriented tool: the pair
        // whose ranking flips with the metric.
        let quiet = ProfileTool::new("quiet", 0.55, 0.01, 1);
        let chatty = ProfileTool::new("chatty", 0.95, 0.35, 2);
        vec![
            score_detector(&quiet, &corpus),
            score_detector(&chatty, &corpus),
        ]
    }

    #[test]
    fn metric_choice_flips_the_winner() {
        let outcomes = outcomes();
        let by_precision = rank_by_metric(&outcomes, &Precision).unwrap();
        let by_recall = rank_by_metric(&outcomes, &Recall).unwrap();
        assert_eq!(by_precision.winner(), "quiet");
        assert_eq!(by_recall.winner(), "chatty");
    }

    #[test]
    fn lower_is_better_metrics_rank_correctly() {
        let outcomes = outcomes();
        let by_fallout = rank_by_metric(&outcomes, &Fallout).unwrap();
        assert_eq!(by_fallout.winner(), "quiet");
    }

    #[test]
    fn positions_invert_ranking() {
        let outcomes = outcomes();
        let t = rank_by_metric(&outcomes, &Informedness).unwrap();
        let pos = t.positions();
        assert_eq!(pos.len(), 2);
        assert_eq!(t.ranking[pos.iter().position(|&p| p == 0).unwrap()], 0);
    }

    #[test]
    fn disagreement_matrix_shape_and_symmetry() {
        let outcomes = outcomes();
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(Precision),
            Box::new(Recall),
            Box::new(Informedness),
        ];
        let m = ranking_disagreement(&outcomes, &metrics).unwrap();
        assert_eq!(m.len(), 3);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), m[j][i].to_bits());
            }
        }
        // Precision and recall disagree completely on this pair of tools.
        assert!((m[0][1] + 1.0).abs() < 1e-12, "tau {}", m[0][1]);
    }

    #[test]
    fn stability_increases_with_fraction() {
        let outcomes = outcomes();
        let mut rng = SeededRng::new(9);
        let small = subsample_stability(&outcomes, &Informedness, 0.05, 60, &mut rng).unwrap();
        let mut rng = SeededRng::new(9);
        let large = subsample_stability(&outcomes, &Informedness, 0.9, 60, &mut rng).unwrap();
        assert!(large >= small, "stability {small} → {large}");
        assert!(large > 0.9);
    }

    #[test]
    fn error_paths() {
        let mut rng = SeededRng::new(1);
        assert!(rank_by_metric(&[], &Recall).is_err());
        assert!(ranking_disagreement(&[], &[]).is_err());
        let o = outcomes();
        assert!(subsample_stability(&o, &Recall, 0.0, 5, &mut rng).is_err());
        assert!(subsample_stability(&o, &Recall, 0.5, 0, &mut rng).is_err());
    }
}
