use vdbench_core::attributes::*;
use vdbench_core::scenario::*;
use vdbench_core::selection::*;

fn main() {
    let cfg = AssessmentConfig::default();
    let sel = MetricSelector::new(default_candidates(), cfg).unwrap();
    for scenario in standard_scenarios() {
        let ratings = sel.ratings_for(&scenario);
        println!(
            "== {} (fp {}, fn {}, prev {})",
            scenario.id, scenario.fp_cost, scenario.fn_cost, scenario.typical_prevalence
        );
        print!("{:10}", "metric");
        for a in MetricAttribute::all() {
            print!(" {:>8}", a.label());
        }
        println!(" {:>8}", "score");
        let (scores, ranking) = sel.analytical(&scenario);
        for (i, m) in sel.candidates().iter().enumerate() {
            print!("{:10}", m.abbrev());
            for v in &ratings[i] {
                print!(" {:8.3}", v);
            }
            println!(" {:8.3}", scores[i]);
        }
        let names: Vec<&str> = ranking
            .iter()
            .map(|&i| sel.candidates()[i].abbrev())
            .collect();
        println!("ranking: {:?}\n", names);
    }
}
