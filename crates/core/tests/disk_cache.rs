//! Integration tests of the persistent disk tier (`vdbench_core::cache`).
//!
//! The disk-store configuration is process-global, so every test takes
//! the same lock, points the store at its own scratch directory under
//! the system temp dir, and detaches the store (and empties the memory
//! tier) before releasing the lock. The properties under test are the
//! ones `run_all`'s byte-identical-transcript guarantee rests on:
//!
//! * a value that round-trips through a blob renders **byte-identically**
//!   to the freshly computed one (including non-finite metric values);
//! * a corrupt, truncated or garbage blob is a cache miss — recompute and
//!   overwrite, never a panic, never a wrong answer;
//! * rendered-artifact strings replay losslessly (control characters,
//!   non-ASCII, quotes and backslashes included) without re-rendering;
//! * opening a store sweeps blobs of foreign schema versions and
//!   abandoned tmp files, and nothing else;
//! * threads racing one key perform exactly one computation and publish
//!   exactly one blob, and concurrent publication never tears a read.

use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use vdbench_core::cache::{clear, reset_stats, stats};
use vdbench_core::{
    cached_artifact, cached_case_study, cached_scan, disk_cache_dir, raw_blob_get, raw_blob_put,
    set_disk_cache, Scenario, ScenarioId, CACHE_SCHEMA_VERSION,
};
use vdbench_corpus::CorpusBuilder;
use vdbench_detectors::{score_detector, DetectionOutcome, DynamicScanner, ProfileTool};

/// Serializes the tests: the disk-store configuration and the cache
/// counters are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking sibling test must not cascade: the state it may have
    // left behind is repaired by `scratch_store` below.
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A scratch store under the system temp dir, wiped on entry, plus a
/// guard that detaches the disk tier and empties the memory tier when
/// dropped (even on panic).
struct ScratchStore {
    dir: PathBuf,
}

impl ScratchStore {
    fn open(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "vdbench-disk-cache-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        clear();
        set_disk_cache(Some(dir.clone()));
        assert_eq!(disk_cache_dir().as_deref(), Some(dir.as_path()));
        reset_stats();
        ScratchStore { dir }
    }

    /// The blob files currently in the store.
    fn blobs(&self) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                    .collect()
            })
            .unwrap_or_default();
        paths.sort();
        paths
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        set_disk_cache(None);
        clear();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn case_study_round_trips_byte_identically() {
    let _guard = lock();
    let store = ScratchStore::open("case-roundtrip");
    let mut scenario = Scenario::standard(ScenarioId::S1Audit);
    scenario.workload_units = 40;
    let seed = 0x00D1_5C01;

    let fresh = cached_case_study(&scenario, seed).expect("standard roster");
    let fresh_table = fresh.to_table("roundtrip").render_markdown();
    let fresh_json = serde_json::to_string(fresh.as_ref()).expect("report serializes");
    let after_cold = stats();
    assert!(after_cold.disk_writes >= 1, "cold run must publish blobs");
    assert!(after_cold.disk_hits == 0);

    // Empty the memory tier; the blob store must answer alone.
    clear();
    let replayed = cached_case_study(&scenario, seed).expect("replayed");
    assert!(
        !Arc::ptr_eq(&fresh, &replayed),
        "memory tier was cleared, this is a new Arc"
    );
    let after_warm = stats();
    assert!(after_warm.disk_hits >= 1, "replay must come from disk");
    assert_eq!(
        after_warm.disk_writes, 0,
        "nothing recomputed, nothing written"
    );

    // Byte-identical rendering and canonical serialization: the property
    // the golden-transcript check in CI rests on. (String equality of the
    // JSON also covers non-finite values, which `PartialEq` on floats
    // cannot.)
    assert_eq!(
        fresh_table,
        replayed.to_table("roundtrip").render_markdown()
    );
    assert_eq!(
        fresh_json,
        serde_json::to_string(replayed.as_ref()).expect("report serializes")
    );
    drop(store);
}

#[test]
fn scan_outcomes_round_trip_across_seeds() {
    let _guard = lock();
    let store = ScratchStore::open("scan-roundtrip");
    // Property sweep: many small workloads, one cheap tool each; every
    // outcome must replay from disk with an identical canonical form.
    for seed in 0..8u64 {
        let corpus = CorpusBuilder::new().units(12).seed(seed).build();
        let tool = ProfileTool::new("sweep", 0.7, 0.1, seed);
        let fresh = cached_scan(&tool, &corpus);
        let fresh_json = serde_json::to_string(fresh.as_ref()).expect("outcome serializes");
        clear();
        let replayed = cached_scan(&tool, &corpus);
        assert_eq!(
            fresh_json,
            serde_json::to_string(replayed.as_ref()).expect("outcome serializes"),
            "seed {seed} must replay byte-identically"
        );
        assert_eq!(fresh.confusion(), replayed.confusion());
        // `clear()` zeroes the counters, so this is per-iteration: the
        // replay right above must have been served by the blob store.
        assert!(stats().disk_hits >= 1, "seed {seed} did not hit the disk");
    }
    drop(store);
}

#[test]
fn corrupt_and_truncated_blobs_fall_back_to_recompute() {
    let _guard = lock();
    let store = ScratchStore::open("corruption");
    let corpus = CorpusBuilder::new().units(15).seed(0xBAD).build();
    let scanner = DynamicScanner::quick();
    let expected = score_detector(&scanner, &corpus);
    let _ = cached_scan(&scanner, &corpus);
    let blobs = store.blobs();
    assert!(!blobs.is_empty(), "the scan must have been persisted");

    // Corruption: outright garbage in every blob.
    for path in &blobs {
        std::fs::write(path, "{ not json at all").expect("inject corruption");
    }
    clear();
    let recomputed = cached_scan(&scanner, &corpus);
    assert_eq!(
        *recomputed, expected,
        "garbage blob must recompute, not replay"
    );
    let s = stats();
    assert_eq!(s.disk_hits, 0, "corrupt blobs are misses");
    assert!(s.disk_misses >= 1);
    assert!(
        s.disk_writes >= 1,
        "the fresh value overwrites the bad blob"
    );
    // The overwritten blob is valid again and replays.
    clear();
    let replayed = cached_scan(&scanner, &corpus);
    assert_eq!(*replayed, expected);
    assert!(stats().disk_hits >= 1);

    // Truncation: a writer torn mid-blob (impossible with the tmp+rename
    // protocol, but the reader must still shrug it off).
    for path in &blobs {
        let bytes = std::fs::read(path).expect("blob readable");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate");
    }
    clear();
    let recomputed = cached_scan(&scanner, &corpus);
    assert_eq!(*recomputed, expected, "truncated blob must recompute");
    drop(store);
}

#[test]
fn artifact_strings_replay_losslessly_without_rerendering() {
    let _guard = lock();
    let store = ScratchStore::open("artifact");
    // Every class of character the JSON string codec has to get right:
    // escapes, control characters, multi-byte UTF-8, astral plane.
    let nasty =
        "quote \" backslash \\ newline\n tab\t unit\u{1f} del\u{7f} caf\u{e9} \u{1F600} end";
    let first = cached_artifact("nasty-artifact", 0xA47, || nasty.to_string());
    assert_eq!(first, nasty);
    let replayed = cached_artifact("nasty-artifact", 0xA47, || {
        unreachable!("warm artifact must replay from disk, not re-render")
    });
    assert_eq!(replayed, nasty, "replay must be byte-identical");
    let s = stats();
    assert!(s.artifact_hits >= 1);
    // Name and seed are both part of the key.
    let other = cached_artifact("nasty-artifact", 0xA48, || "other".to_string());
    assert_eq!(other, "other");
    let renamed = cached_artifact("other-artifact", 0xA47, || "renamed".to_string());
    assert_eq!(renamed, "renamed");
    drop(store);
}

#[test]
fn racing_threads_compute_once_and_publish_one_blob() {
    let _guard = lock();
    let store = ScratchStore::open("race");
    const THREADS: usize = 8;
    let corpus = CorpusBuilder::new().units(60).seed(0x0000_CED0).build();
    let scanner = DynamicScanner::quick();
    let barrier = Barrier::new(THREADS);

    // All threads released at once onto the same cold key: the memory
    // tier's per-key cell must elect one computer and block the rest.
    let results: Vec<Arc<DetectionOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    cached_scan(&scanner, &corpus)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no racing thread panics"))
            .collect()
    });

    let s = stats();
    assert_eq!(s.scan_misses, 1, "exactly one thread computes");
    assert_eq!(s.scan_hits as usize, THREADS - 1, "the rest attach to it");
    assert_eq!(s.disk_writes, 1, "the winner publishes exactly once");
    for other in &results[1..] {
        assert!(
            Arc::ptr_eq(&results[0], other),
            "every racer shares the single computed value"
        );
    }

    // Exactly one complete blob landed, and it parses back to the value
    // the racers got — no torn or duplicate publication.
    let blobs = store.blobs();
    assert_eq!(blobs.len(), 1, "one key, one blob: {blobs:?}");
    let text = std::fs::read_to_string(&blobs[0]).expect("blob readable");
    let parsed: DetectionOutcome = serde_json::from_str(&text).expect("published blob is whole");
    assert_eq!(parsed, *results[0]);

    // And once the memory tier empties, the raced key replays from disk.
    clear();
    let replayed = cached_scan(&scanner, &corpus);
    assert_eq!(*replayed, *results[0]);
    assert!(stats().disk_hits >= 1, "replay must come from the blob");
    drop(store);
}

#[test]
fn concurrent_publication_to_one_key_never_tears_a_read() {
    let _guard = lock();
    let store = ScratchStore::open("publish-race");
    let key = 0xFEED_FACE_u64;
    // Payloads large enough that a non-atomic writer would be caught
    // mid-flight, each a pure repetition so any splice of the two is
    // distinguishable from both.
    let alpha = "alpha-".repeat(20_000);
    let beta = "beta-".repeat(24_000);
    raw_blob_put("scan", key, &alpha);

    std::thread::scope(|s| {
        for payload in [&alpha, &beta] {
            s.spawn(move || {
                for _ in 0..40 {
                    raw_blob_put("scan", key, payload);
                }
            });
        }
        // The reader races both writers lock-free: every observation
        // must be one of the two complete payloads, never a mixture or
        // a truncation, and never a miss (rename replaces atomically).
        for round in 0..200 {
            let text = raw_blob_get("scan", key)
                .unwrap_or_else(|| panic!("round {round}: published key must stay readable"));
            assert!(
                text == alpha || text == beta,
                "round {round}: torn read, {} bytes starting {:?}",
                text.len(),
                &text[..text.len().min(16)]
            );
        }
    });
    drop(store);
}

#[test]
fn opening_a_store_sweeps_only_foreign_schema_blobs() {
    let _guard = lock();
    clear();
    set_disk_cache(None);
    let dir = std::env::temp_dir().join(format!(
        "vdbench-disk-cache-test-{}-sweep",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let stale = dir.join("v0-case-00000000deadbeef.json");
    let abandoned = dir.join("00000000deadbeef.tmp-1-2");
    let current = dir.join(format!(
        "v{CACHE_SCHEMA_VERSION}-case-00000000deadbeef.json"
    ));
    let baseline = dir.join(format!(
        "campaign-baseline-v{CACHE_SCHEMA_VERSION}-0000000000000000.txt"
    ));
    for path in [&stale, &abandoned, &current, &baseline] {
        std::fs::write(path, "payload").expect("seed file");
    }
    reset_stats();
    set_disk_cache(Some(dir.clone()));
    assert!(!stale.exists(), "foreign schema version must be swept");
    assert!(!abandoned.exists(), "abandoned tmp file must be swept");
    assert!(current.exists(), "current schema version must survive");
    assert!(baseline.exists(), "timing baselines must survive the sweep");
    assert!(stats().disk_evictions >= 2);
    set_disk_cache(None);
    clear();
    let _ = std::fs::remove_dir_all(&dir);
}
