//! Campaign-engine regression tests: thread-count invariance and cache
//! behaviour.
//!
//! The workspace's determinism contract (DESIGN.md, "Concurrency and
//! caching") is that every result is a pure function of the seed —
//! independent of the worker-thread count and of whether intermediates
//! were served from the campaign cache. These tests pin that contract on
//! the largest composite artifact, [`markdown_report`].
//!
//! Everything lives in one `#[test]` because the scenario manipulates the
//! process-global `RAYON_NUM_THREADS` variable and the process-global
//! campaign cache; concurrent test threads must not interleave with it.

use vdbench_core::cache;
use vdbench_core::campaign::markdown_report;

#[test]
fn markdown_report_is_thread_count_invariant_and_cached() {
    const SEED: u64 = 0xDE7E12;

    // --- Serial baseline (strictly one worker everywhere). -------------
    cache::clear();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = markdown_report(SEED).expect("standard configuration");
    let after_serial = cache::stats();
    assert!(
        after_serial.case_study_misses >= 4,
        "cold cache computes every scenario: {after_serial:?}"
    );
    assert!(after_serial.assessment_misses >= 1, "{after_serial:?}");

    // --- Parallel recomputation from a cold cache. ---------------------
    cache::clear();
    std::env::set_var("RAYON_NUM_THREADS", "7");
    let parallel = markdown_report(SEED).expect("standard configuration");
    assert_eq!(
        serial, parallel,
        "campaign output must be byte-identical across thread counts"
    );

    // --- Warm repeat: pure cache hits, still byte-identical. -----------
    let warm_before = cache::stats();
    let repeat = markdown_report(SEED).expect("standard configuration");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial, repeat, "cache hits must not change the output");
    let warm_after = cache::stats();
    assert_eq!(
        warm_after.case_study_misses, warm_before.case_study_misses,
        "warm render must not recompute any case study"
    );
    assert_eq!(
        warm_after.assessment_misses, warm_before.assessment_misses,
        "warm render must not recompute the assessment"
    );
    assert!(
        warm_after.case_study_hits >= warm_before.case_study_hits + 4,
        "every scenario served from cache: {warm_before:?} -> {warm_after:?}"
    );
    assert!(
        warm_after.assessment_hits > warm_before.assessment_hits,
        "{warm_before:?} -> {warm_after:?}"
    );
}
