//! Campaign-engine regression tests: thread-count invariance and cache
//! behaviour.
//!
//! The workspace's determinism contract (DESIGN.md, "Concurrency and
//! caching") is that every result is a pure function of the seed —
//! independent of the worker-thread count and of whether intermediates
//! were served from the campaign cache. These tests pin that contract on
//! the largest composite artifact, [`markdown_report`].
//!
//! Everything lives in one `#[test]` because the scenario manipulates the
//! process-global `RAYON_NUM_THREADS` variable and the process-global
//! campaign cache; concurrent test threads must not interleave with it.

use vdbench_core::cache;
use vdbench_core::campaign::markdown_report;

#[test]
fn markdown_report_is_thread_count_invariant_and_cached() {
    const SEED: u64 = 0xDE7E12;

    // --- Serial baseline (strictly one worker everywhere). -------------
    cache::clear();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = markdown_report(SEED).expect("standard configuration");
    let after_serial = cache::stats();
    assert!(
        after_serial.case_study_misses >= 4,
        "cold cache computes every scenario: {after_serial:?}"
    );
    assert!(after_serial.assessment_misses >= 1, "{after_serial:?}");

    // --- Parallel recomputation from a cold cache. ---------------------
    cache::clear();
    std::env::set_var("RAYON_NUM_THREADS", "7");
    let parallel = markdown_report(SEED).expect("standard configuration");
    assert_eq!(
        serial, parallel,
        "campaign output must be byte-identical across thread counts"
    );

    // --- Warm repeat: pure cache hits, still byte-identical. -----------
    // `reset_stats` zeroes the counters without evicting entries, so the
    // assertions below are *absolute*: they no longer depend on how much
    // cache traffic happened to precede this section.
    cache::reset_stats();
    let repeat = markdown_report(SEED).expect("standard configuration");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial, repeat, "cache hits must not change the output");
    let warm = cache::stats();
    assert_eq!(
        warm.case_study_misses, 0,
        "warm render must not recompute any case study: {warm:?}"
    );
    assert_eq!(
        warm.assessment_misses, 0,
        "warm render must not recompute the assessment: {warm:?}"
    );
    assert!(
        warm.case_study_hits >= 4,
        "every scenario served from cache: {warm:?}"
    );
    assert!(warm.assessment_hits >= 1, "{warm:?}");
}
