//! The warm-replay speedup contract, measured on the cold/warm pair
//! itself.
//!
//! CI used to re-run the whole campaign and eyeball the recorded
//! `cold_millis` / `warm_millis` quotient in a post-hoc python snippet;
//! this test owns the contract instead, at the same tier the campaign
//! leans on. One artifact rendered cold against an empty blob store —
//! a real stateful scan plus its summary table — must replay from disk
//! with the memory tier emptied **at least 5× faster** and
//! byte-identical, without re-rendering at all. The replay is timed
//! best-of-three so a scheduler hiccup on a loaded CI runner cannot
//! fail the ratio spuriously; the cold leg is timed once, because noise
//! only ever *inflates* it.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vdbench_core::cache::{clear, reset_stats, stats};
use vdbench_core::{cached_artifact, cached_scan, disk_cache_dir, set_disk_cache};
use vdbench_corpus::{Corpus, CorpusBuilder};
use vdbench_detectors::DynamicScanner;

/// Serializes against every other test in this binary (and mirrors the
/// `disk_cache.rs` idiom): the disk-store configuration and the cache
/// counters are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A scratch store under the system temp dir, wiped on entry, detached
/// and deleted on drop (even on panic).
struct ScratchStore {
    dir: PathBuf,
}

impl ScratchStore {
    fn open(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "vdbench-warm-replay-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        clear();
        set_disk_cache(Some(dir.clone()));
        assert_eq!(disk_cache_dir().as_deref(), Some(dir.as_path()));
        reset_stats();
        ScratchStore { dir }
    }

    /// Blob files of one cache kind currently in the store.
    fn blobs_of_kind(&self, kind: &str) -> Vec<PathBuf> {
        let marker = format!("-{kind}-");
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| {
                        p.extension().is_some_and(|ext| ext == "json")
                            && p.file_name()
                                .and_then(|n| n.to_str())
                                .is_some_and(|n| n.contains(&marker))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        set_disk_cache(None);
        clear();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const ARTIFACT: &str = "warm-replay-probe";
const SEED: u64 = 0x00AB_2015;

/// The cold computation: a real stateful scan over a stored-flow
/// workload, rendered down to the summary text the artifact tier files.
fn render_probe(corpus: &Corpus) -> String {
    let outcome = cached_scan(&DynamicScanner::stateful(), corpus);
    let cm = outcome.confusion();
    format!(
        "{} on {} sites: tp={} fp={} fn={} tn={}\n",
        outcome.tool(),
        corpus.site_count(),
        cm.tp,
        cm.fp,
        cm.fn_,
        cm.tn
    )
}

#[test]
fn warm_artifact_replay_is_at_least_5x_faster_than_the_cold_render() {
    let _guard = lock();
    let store = ScratchStore::open("pair");
    let corpus = CorpusBuilder::new()
        .units(200)
        .vulnerability_density(0.3)
        .stored_rate(0.5)
        .seed(SEED)
        .build();

    let cold_start = Instant::now();
    let cold_text = cached_artifact(ARTIFACT, SEED, || render_probe(&corpus));
    let cold_elapsed = cold_start.elapsed();
    let after_cold = stats();
    assert_eq!(after_cold.artifact_misses, 1, "cold render computes");
    assert!(
        after_cold.disk_writes >= 2,
        "cold render must publish the scan blob and the artifact blob"
    );

    let mut warm_elapsed = Duration::MAX;
    for round in 0..3 {
        // `clear` empties the memory tier *and* zeroes the counters, so
        // each round proves on its own that the blob store answered.
        clear();
        let warm_start = Instant::now();
        let warm = cached_artifact(ARTIFACT, SEED, || {
            unreachable!("round {round}: warm artifact must replay, not re-render")
        });
        warm_elapsed = warm_elapsed.min(warm_start.elapsed());
        assert_eq!(
            cold_text, warm,
            "round {round} must replay byte-identically"
        );
        let s = stats();
        assert!(
            s.artifact_hits >= 1,
            "round {round} must hit the artifact tier"
        );
        assert!(
            s.disk_hits >= 1,
            "round {round} must be served by the blob store"
        );
    }

    let ratio = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9);
    eprintln!("warm-replay pair: cold {cold_elapsed:?}, best warm {warm_elapsed:?}, {ratio:.1}x");
    assert!(
        ratio >= 5.0,
        "warm replay speedup {ratio:.1}x < contractual 5x \
         (cold {cold_elapsed:?}, best warm {warm_elapsed:?})"
    );

    // The tiers really are independent: drop only the artifact blob and
    // the re-render must replay its *scan* from disk instead of
    // recomputing it, reproducing the exact cold bytes.
    let art_blobs = store.blobs_of_kind("art");
    assert!(!art_blobs.is_empty(), "artifact blob must be on disk");
    for path in &art_blobs {
        std::fs::remove_file(path).expect("drop artifact blob");
    }
    clear();
    let rerendered = cached_artifact(ARTIFACT, SEED, || render_probe(&corpus));
    assert_eq!(
        rerendered, cold_text,
        "re-render must reproduce the cold bytes"
    );
    let s = stats();
    assert_eq!(s.artifact_misses, 1, "the artifact itself re-renders");
    assert_eq!(
        s.scan_misses, 1,
        "the scan cell recomputes at most its lookup"
    );
    assert!(
        s.disk_hits >= 1,
        "…but the scan value replays from its blob"
    );
    drop(store);
}
