//! Degraded-campaign flow: fault-wrapped rosters must complete, report
//! honest availability, and render everywhere a clean campaign renders.
//!
//! The ambient fault-injection configuration and the campaign cache are
//! process-global, so every test here serializes on one lock.

use std::sync::{Arc, Mutex, MutexGuard};
use vdbench_core::campaign::{self, run_case_study_faulty};
use vdbench_core::scenario::{Scenario, ScenarioId};
use vdbench_core::{cached_case_study, set_fault_injection, Benchmark, CoreError};
use vdbench_detectors::{
    DetectionOutcome, Detector, FaultConfig, FaultPlan, FaultProfile, FaultRates, FaultyDetector,
    ScanPolicy,
};
use vdbench_metrics::basic::Recall;
use vdbench_stats::SeededRng;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().expect("degraded test lock poisoned")
}

fn small_scenario(units: usize) -> Scenario {
    let mut s = Scenario::standard(ScenarioId::S1Audit);
    s.workload_units = units;
    s
}

/// Wraps the standard roster so every tool crashes on its first unit,
/// every attempt.
fn doomed_roster(seed: u64) -> Vec<Box<dyn Detector>> {
    campaign::standard_tools(seed)
        .into_iter()
        .map(|t| {
            Box::new(FaultyDetector::new(
                t,
                FaultPlan::with_rates(5, FaultRates::always_crash()),
            )) as Box<dyn Detector>
        })
        .collect()
}

#[test]
fn always_crashing_roster_degrades_gracefully() {
    let _guard = lock();
    let corpus = campaign::scenario_corpus(&small_scenario(40), 11);
    let report = Benchmark::new(corpus)
        .tools(doomed_roster(11))
        .metric(Box::new(Recall))
        .run_resilient(&ScanPolicy::default())
        .expect("a fully-crashing roster is degraded data, not an error");

    assert!(report.degraded());
    assert_eq!(report.availability(), 0.0);
    assert_eq!(report.scans().len(), 8);
    for scan in report.scans() {
        assert!(scan.failed());
        assert_eq!(scan.attempts, 3, "default policy exhausts 3 attempts");
        assert_eq!(scan.retries(), 2);
        assert_eq!(scan.backoff_ms, 150, "50 + 100 ms of virtual backoff");
        let err = scan.error.as_deref().expect("failed scans carry errors");
        assert!(err.contains("crash"), "{err}");
    }
    // Failed tools score as *empty* outcomes — metrics are NaN, not 0.
    for outcome in report.outcomes() {
        assert!(outcome.records().is_empty());
        assert!(report.value(0, 0).is_nan());
    }
    // Unavailable rows render as ✗ (distinct from — for undefined).
    assert!(report.to_table("degraded").render_ascii().contains('✗'));
    let availability = report
        .to_availability_table("availability")
        .render_markdown();
    assert!(availability.contains("failed"), "{availability}");
    assert!(availability.contains("150"), "{availability}");
    // Strict callers turn degradation into a typed error.
    match report.require_complete() {
        Err(CoreError::ScanFailed { attempts, tool, .. }) => {
            assert_eq!(attempts, 3);
            assert!(!tool.is_empty());
        }
        other => panic!("expected ScanFailed, got {other:?}"),
    }
}

#[test]
fn faulty_case_study_is_deterministic() {
    let _guard = lock();
    let scenario = small_scenario(60);
    let cfg = FaultConfig::new(FaultProfile::Hostile, 0xFEED);
    let first = run_case_study_faulty(&scenario, 5, cfg).unwrap();
    let second = run_case_study_faulty(&scenario, 5, cfg).unwrap();
    assert_eq!(first.scans(), second.scans());
    assert_eq!(first.outcomes(), second.outcomes());
    assert_eq!(
        first.to_table("t").render_ascii(),
        second.to_table("t").render_ascii()
    );
    assert_eq!(first.scans().len(), 8, "whole roster scanned");
    // A different fault seed redraws every decision stream.
    let reseeded = run_case_study_faulty(
        &scenario,
        5,
        FaultConfig::new(FaultProfile::Hostile, 0xFEEE),
    )
    .unwrap();
    assert_ne!(
        (first.scans(), first.outcomes()),
        (reseeded.scans(), reseeded.outcomes()),
        "hostile faults under a different seed must differ"
    );
}

#[test]
fn ambient_fault_config_reroutes_cached_case_studies() {
    let _guard = lock();
    let scenario = small_scenario(50);
    let seed = 0xC0_FE;
    set_fault_injection(None);
    let clean = cached_case_study(&scenario, seed).unwrap();
    assert!(!clean.degraded());
    assert_eq!(clean.availability(), 1.0);

    set_fault_injection(Some(FaultConfig::new(FaultProfile::Hostile, 3)));
    let faulty = cached_case_study(&scenario, seed).unwrap();
    assert!(
        !Arc::ptr_eq(&clean, &faulty),
        "fault fingerprint must split the cache key"
    );
    let again = cached_case_study(&scenario, seed).unwrap();
    assert!(Arc::ptr_eq(&faulty, &again), "same config is a cache hit");

    set_fault_injection(None);
    let clean_again = cached_case_study(&scenario, seed).unwrap();
    assert!(
        Arc::ptr_eq(&clean, &clean_again),
        "clearing the config restores the clean entry"
    );
}

#[test]
fn markdown_report_discloses_degraded_availability() {
    let _guard = lock();
    set_fault_injection(Some(FaultConfig::new(FaultProfile::Hostile, 0xFA_2015)));
    let text = campaign::markdown_report(0xD5_2015);
    set_fault_injection(None);
    let text = text.expect("hostile campaign still renders");
    assert!(text.contains("# vdbench campaign report"));
    assert!(text.contains("Degraded run"), "availability note missing");
    assert!(text.contains("Per-tool scan availability"));
    assert!(text.contains("failed"));
    assert!(
        text.contains("Selected metric"),
        "selection must still run on degraded data"
    );
}

#[test]
fn subsample_stability_handles_empty_and_mixed_outcomes() {
    let _guard = lock();
    // All-empty: typed NoData, not a clamp panic.
    let empty = vec![DetectionOutcome::empty("a"), DetectionOutcome::empty("b")];
    let mut rng = SeededRng::new(1);
    let err = vdbench_core::ranking::subsample_stability(&empty, &Recall, 0.5, 4, &mut rng)
        .expect_err("no scored cases to subsample");
    assert!(matches!(err, CoreError::NoData { .. }), "{err}");

    // Mixed full/empty (a degraded campaign's shape): computes without
    // panicking, the empty tool simply ranks last in every subsample.
    let corpus = campaign::scenario_corpus(&small_scenario(40), 9);
    let scored =
        vdbench_detectors::score_detector(campaign::standard_tools(9)[0].as_ref(), &corpus);
    let mixed = vec![scored, DetectionOutcome::empty("dead-tool")];
    let mut rng = SeededRng::new(2);
    let tau = vdbench_core::ranking::subsample_stability(&mixed, &Recall, 0.5, 8, &mut rng)
        .expect("mixed outcomes subsample fine");
    assert!(tau.is_finite());
}
