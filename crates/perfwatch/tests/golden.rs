//! Golden-output guarantees for `perfwatch check`: on a fixture history the
//! verdicts and the rendered trend table are byte-identical across reruns
//! and rayon thread counts, a synthetic 20% injected regression is flagged,
//! and a seeded noise-only rerun is not.

use std::path::{Path, PathBuf};
use vdbench_perfwatch::{analyze, append_entry, load_dir, Config, RunEntry, Series, Verdict};

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfwatch-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic jitter around `center`: ±1%, fixed pattern per index.
fn jitter(center: f64, n: usize, phase: usize) -> Vec<f64> {
    (0..n)
        .map(|i| center * (1.0 + 0.01 * ((((i + phase) * 7919) % 13) as f64 - 6.0) / 6.0))
        .collect()
}

fn entry(source: &str, baseline: bool, label: &str, series: Vec<Series>) -> RunEntry {
    RunEntry {
        source: source.to_string(),
        unix_ms: 1_750_000_000_000,
        label: label.to_string(),
        provenance: String::new(),
        baseline,
        series,
    }
}

/// A fixture history over all four sources: committed-style baselines plus
/// one candidate run carrying a 20% kernel slowdown and noise elsewhere.
fn write_fixture(dir: &Path) {
    append_entry(
        dir,
        &entry(
            "kernels",
            true,
            "seed",
            vec![
                Series::delta(
                    "kendall-512:speedup",
                    "ratio",
                    "higher",
                    true,
                    jitter(3.0, 24, 0),
                ),
                Series::delta(
                    "wilson-4096:speedup",
                    "ratio",
                    "higher",
                    true,
                    jitter(2.0, 24, 1),
                ),
                Series::delta(
                    "kendall/naive/512",
                    "ns/iter",
                    "lower",
                    false,
                    jitter(5e6, 10, 2),
                ),
            ],
        ),
    )
    .unwrap();
    append_entry(
        dir,
        &entry(
            "kernels",
            false,
            "candidate",
            vec![
                // Injected regression: speedup ratio drops 20% (3.0 → 2.4).
                Series::delta(
                    "kendall-512:speedup",
                    "ratio",
                    "higher",
                    true,
                    jitter(2.4, 24, 3),
                ),
                // Noise-only: same distribution, different jitter phase.
                Series::delta(
                    "wilson-4096:speedup",
                    "ratio",
                    "higher",
                    true,
                    jitter(2.0, 24, 4),
                ),
                Series::delta(
                    "kendall/naive/512",
                    "ns/iter",
                    "lower",
                    false,
                    jitter(5.1e6, 10, 5),
                ),
            ],
        ),
    )
    .unwrap();
    append_entry(
        dir,
        &entry(
            "campaign",
            true,
            "seed",
            vec![
                Series::bounded(
                    "warm_over_cold",
                    "ratio",
                    "lower",
                    true,
                    jitter(0.05, 4, 6),
                    0.2,
                ),
                Series::delta("total_millis", "ms", "lower", false, jitter(900.0, 4, 7)),
            ],
        ),
    )
    .unwrap();
    append_entry(
        dir,
        &entry(
            "serve",
            true,
            "seed",
            vec![Series::proportion(
                "warm_hit_ratio",
                "higher",
                true,
                995,
                1000,
                0.9,
            )],
        ),
    )
    .unwrap();
    append_entry(
        dir,
        &entry(
            "scale",
            true,
            "seed",
            vec![Series::bounded(
                "rss_growth",
                "ratio",
                "lower",
                true,
                jitter(1.05, 3, 8),
                1.5,
            )],
        ),
    )
    .unwrap();
}

fn check(dir: &Path) -> (bool, String) {
    let entries = load_dir(dir).unwrap();
    let analysis = analyze(&entries, &Config::default());
    let md = vdbench_perfwatch::render::trend_markdown(&analysis);
    (analysis.failed(), md)
}

#[test]
fn injected_regression_flagged_noise_not_and_output_is_golden() {
    let dir = fixture_dir("main");
    write_fixture(&dir);

    let entries = load_dir(&dir).unwrap();
    let analysis = analyze(&entries, &Config::default());
    let report = |name: &str| {
        analysis
            .reports
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing series {name}"))
    };
    // The 20% injected slowdown is a confirmed regression; the noise-only
    // rerun and the bound/proportion series all pass.
    assert_eq!(report("kendall-512:speedup").verdict, Verdict::Regression);
    assert_eq!(report("wilson-4096:speedup").verdict, Verdict::Stable);
    assert_eq!(report("warm_over_cold").verdict, Verdict::BoundOk);
    assert_eq!(report("warm_hit_ratio").verdict, Verdict::BoundOk);
    assert_eq!(report("rss_growth").verdict, Verdict::BoundOk);
    assert_eq!(report("kendall/naive/512").verdict, Verdict::Advisory);
    assert!(analysis.failed());

    // Byte-identical across reruns and thread counts.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let (failed_serial, md_serial) = check(&dir);
    std::env::set_var("RAYON_NUM_THREADS", "7");
    let (failed_parallel, md_parallel) = check(&dir);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert!(failed_serial && failed_parallel);
    assert_eq!(md_serial, md_parallel);
    assert_eq!(md_serial, check(&dir).1);
    assert!(md_serial.contains("REGRESSION"), "{md_serial}");
    assert!(md_serial.contains("confirmed regression"), "{md_serial}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn noise_only_history_passes() {
    let dir = fixture_dir("noise");
    append_entry(
        &dir,
        &entry(
            "kernels",
            true,
            "seed",
            vec![Series::delta(
                "k:speedup",
                "ratio",
                "higher",
                true,
                jitter(2.5, 24, 0),
            )],
        ),
    )
    .unwrap();
    append_entry(
        &dir,
        &entry(
            "kernels",
            false,
            "rerun",
            vec![Series::delta(
                "k:speedup",
                "ratio",
                "higher",
                true,
                jitter(2.5, 24, 9),
            )],
        ),
    )
    .unwrap();
    let (failed, md) = check(&dir);
    assert!(!failed, "{md}");
    assert!(md.contains("no confirmed regressions"), "{md}");
    std::fs::remove_dir_all(&dir).unwrap();
}
