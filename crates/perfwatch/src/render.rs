//! Deterministic markdown rendering of a perfwatch analysis.
//!
//! The trend table contains no timestamps, hostnames or float formatting
//! that could vary between runs — given the same ledger and config it is
//! byte-identical across reruns and thread counts (golden-tested), so CI
//! can diff artifacts between jobs.

use crate::analyze::{Analysis, SeriesReport, Verdict};
use std::fmt::Write as _;

/// Fixed-precision float for table cells: four significant-ish decimals,
/// stripped of a redundant trailing ".0000" only never — fixed width keeps
/// diffs clean.
fn num(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

fn opt_num(v: Option<f64>) -> String {
    v.map(num).unwrap_or_else(|| "—".to_string())
}

fn ci_cell(r: &SeriesReport) -> String {
    match r.ci {
        Some((lo, hi)) => format!("[{}, {}]", num(lo), num(hi)),
        None => "—".to_string(),
    }
}

fn p_cell(r: &SeriesReport) -> String {
    match (r.p_raw, r.p_adj) {
        (Some(raw), Some(adj)) => format!("{} ({})", num(raw), num(adj)),
        (Some(raw), None) => num(raw),
        _ => "—".to_string(),
    }
}

fn delta_cell(r: &SeriesReport) -> String {
    match r.delta_pct {
        Some(d) => format!("{}{}%", if d >= 0.0 { "+" } else { "" }, num(d)),
        None => match r.bound {
            Some(b) => format!(
                "bound {} {}",
                if r.direction == "higher" {
                    "≥"
                } else {
                    "≤"
                },
                num(b)
            ),
            None => "—".to_string(),
        },
    }
}

/// Renders the full markdown trend report.
pub fn trend_markdown(analysis: &Analysis) -> String {
    let mut out = String::new();
    let c = &analysis.config;
    out.push_str("# perfwatch trend\n\n");
    let _ = writeln!(
        out,
        "Decision rule: bootstrap {}% CI on the direction-signed relative delta \
         (positive = worse), permutation confirmation at α = {} with \
         Holm–Bonferroni correction across gated series, minimum effect {}%. \
         Bounds are checked against the whole interval (Wilson for proportions). \
         {} replicates, {} rounds.",
        num(c.level * 100.0),
        num(c.alpha),
        num(c.min_effect * 100.0),
        c.replicates,
        c.rounds
    );
    out.push('\n');
    out.push_str(
        "| source | series | unit | gate | baseline | candidate | Δ% (worse > 0) | CI | p (adj) | verdict |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for r in &analysis.reports {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {}{} |",
            r.source,
            r.name,
            r.unit,
            if r.gate { "yes" } else { "advisory" },
            opt_num(r.baseline_mean),
            opt_num(r.candidate_mean),
            delta_cell(r),
            ci_cell(r),
            p_cell(r),
            r.verdict.label(),
            if r.note.is_empty() {
                String::new()
            } else {
                format!(" ({})", r.note)
            },
        );
    }
    out.push('\n');
    out.push_str(&summary_line(analysis));
    out.push('\n');
    out
}

/// One-line verdict summary (also printed to stdout by the CLI).
pub fn summary_line(analysis: &Analysis) -> String {
    let total = analysis.reports.len();
    let failures = analysis.failures();
    let regressions = failures
        .iter()
        .filter(|r| r.verdict == Verdict::Regression)
        .count();
    let violations = failures.len() - regressions;
    if failures.is_empty() {
        format!("perfwatch: {total} series checked, no confirmed regressions")
    } else {
        let names: Vec<String> = failures
            .iter()
            .map(|r| format!("{}/{}", r.source, r.name))
            .collect();
        format!(
            "perfwatch: {total} series checked, {regressions} confirmed regression(s), \
             {violations} bound violation(s): {}",
            names.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, Config};
    use crate::ledger::{RunEntry, Series};

    #[test]
    fn trend_table_mentions_every_series_and_summary_counts() {
        let entries = vec![RunEntry {
            source: "serve".to_string(),
            unix_ms: 0,
            label: String::new(),
            provenance: String::new(),
            baseline: true,
            series: vec![
                Series::proportion("warm_hit_ratio", "higher", true, 99, 100, 0.9),
                Series::delta("latency_us", "µs", "lower", false, vec![100.0, 105.0]),
            ],
        }];
        let analysis = analyze(&entries, &Config::default());
        let md = trend_markdown(&analysis);
        assert!(md.contains("| serve | warm_hit_ratio |"), "{md}");
        assert!(md.contains("| serve | latency_us |"), "{md}");
        assert!(md.contains("bound ≥ 0.9000"), "{md}");
        assert!(md.contains("no confirmed regressions"), "{md}");
        // Rendering is a pure function of the analysis.
        assert_eq!(md, trend_markdown(&analysis));
    }

    #[test]
    fn failing_summary_names_the_series() {
        let entries = vec![RunEntry {
            source: "serve".to_string(),
            unix_ms: 0,
            label: String::new(),
            provenance: String::new(),
            baseline: true,
            series: vec![Series::proportion(
                "warm_hit_ratio",
                "higher",
                true,
                10,
                100,
                0.9,
            )],
        }];
        let analysis = analyze(&entries, &Config::default());
        let line = summary_line(&analysis);
        assert!(line.contains("serve/warm_hit_ratio"), "{line}");
        assert!(line.contains("1 bound violation(s)"), "{line}");
    }
}
