//! Self-hosted statistical perf-regression gate.
//!
//! The paper's thesis — tool comparisons need principled statistics, not
//! eyeballed thresholds — applies to this repository's own benchmarks too.
//! This crate dogfoods the stats substrate on the `BENCH_*` perf suites:
//! each bench writer appends a run entry (raw sample vectors, not just
//! means) to a JSONL ledger under `results/perf-history/`, and `vdbench
//! perfwatch check` decides "did this series regress?" with a bootstrap
//! percentile CI on the baseline-vs-candidate relative delta, confirmed by
//! a permutation test with Holm–Bonferroni correction across all gated
//! series. See DESIGN.md §17 for the architecture and decision rule.
//!
//! Layout:
//!
//! - [`ledger`] — the append-only run ledger (`<source>.jsonl` files) and
//!   its entry/series schema, plus the re-baseline rewrite.
//! - [`mod@analyze`] — the statistical decision rule turning ledger history
//!   into per-series verdicts.
//! - [`render`] — the deterministic markdown trend table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod ledger;
pub mod render;

pub use analyze::{analyze, Analysis, Config, SeriesReport, Verdict};
pub use ledger::{
    append_entry, env_dir, load_dir, now_ms, rebaseline, rebaseline_source, RunEntry, Series,
};
