//! Append-only JSONL perf-history ledger.
//!
//! One file per source (`kernels.jsonl`, `campaign.jsonl`, `scale.jsonl`,
//! `serve.jsonl`), one JSON object per line, one line per bench run. The
//! committed lines carry `"baseline": true` and form the reference pool;
//! CI appends candidate lines (never committed) and `perfwatch check`
//! compares the pools. `perfwatch update` flips the latest run of every
//! source into the new baseline, recording a provenance note — the
//! auditable "we re-baselined on purpose" trail the eyeballed thresholds
//! this subsystem replaces never had.
//!
//! Capture is strictly opt-in: writers only append when handed a directory
//! (via a `--perf-history` flag or the `VDBENCH_PERF_HISTORY` environment
//! variable, see [`env_dir`]), so ordinary test runs never dirty the
//! checkout.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One tracked measurement series within a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name, unique within its source (e.g. `kendall-512:speedup`).
    pub name: String,
    /// Unit label for rendering (`ratio`, `ns/iter`, `ms`, `kB`, …).
    pub unit: String,
    /// Which direction is good: `"higher"` or `"lower"`.
    pub direction: String,
    /// Whether this series can fail the gate. Ungated series are advisory:
    /// reported in the trend table, never an exit-code failure. Absolute
    /// wall-clock series are advisory because CI hardware differs from the
    /// baseline host; ratios and proportions measured in-process are gated.
    pub gate: bool,
    /// Raw per-run samples (batch means, per-request ratios, …).
    pub samples: Vec<f64>,
    /// For bound series: the floor (direction `higher`) or ceiling
    /// (direction `lower`) the series must clear, checked against a
    /// confidence interval rather than a point estimate. `None` selects
    /// the baseline-vs-candidate delta rule instead.
    pub bound: Option<f64>,
    /// For proportion bound series: successes out of [`Self::trials`]
    /// (checked with a Wilson interval instead of the bootstrap).
    pub successes: Option<u64>,
    /// Trial count behind [`Self::successes`].
    pub trials: Option<u64>,
}

impl Series {
    /// A sample-vector series compared baseline-vs-candidate.
    pub fn delta(
        name: impl Into<String>,
        unit: impl Into<String>,
        direction: &str,
        gate: bool,
        samples: Vec<f64>,
    ) -> Self {
        Series {
            name: name.into(),
            unit: unit.into(),
            direction: direction.to_string(),
            gate,
            samples,
            bound: None,
            successes: None,
            trials: None,
        }
    }

    /// A sample-vector series checked against an absolute bound.
    pub fn bounded(
        name: impl Into<String>,
        unit: impl Into<String>,
        direction: &str,
        gate: bool,
        samples: Vec<f64>,
        bound: f64,
    ) -> Self {
        Series {
            bound: Some(bound),
            ..Series::delta(name, unit, direction, gate, samples)
        }
    }

    /// A proportion series (`successes / trials`) checked against a bound
    /// via a Wilson score interval.
    pub fn proportion(
        name: impl Into<String>,
        direction: &str,
        gate: bool,
        successes: u64,
        trials: u64,
        bound: f64,
    ) -> Self {
        Series {
            bound: Some(bound),
            successes: Some(successes),
            trials: Some(trials),
            ..Series::delta(name, "proportion", direction, gate, Vec::new())
        }
    }
}

/// One ledger line: a single bench run of one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEntry {
    /// Which suite produced the entry: `kernels`, `campaign`, `scale` or
    /// `serve` (also the ledger file stem).
    pub source: String,
    /// Wall-clock capture time, milliseconds since the Unix epoch
    /// (provenance only — never rendered into gate output).
    pub unix_ms: u64,
    /// Short free-form run label (e.g. `quick`, `ci`, `cold+3warm`).
    pub label: String,
    /// Provenance note; `perfwatch update` records the operator's
    /// re-baseline reason here.
    pub provenance: String,
    /// Whether this run belongs to the baseline pool.
    pub baseline: bool,
    /// The measurement series captured by this run.
    pub series: Vec<Series>,
}

/// Milliseconds since the Unix epoch, for [`RunEntry::unix_ms`].
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The ledger directory selected by the `VDBENCH_PERF_HISTORY` environment
/// variable, if set and non-empty. Writers treat `None` as "capture off".
pub fn env_dir() -> Option<PathBuf> {
    std::env::var("VDBENCH_PERF_HISTORY")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(PathBuf::from)
}

fn ledger_path(dir: &Path, source: &str) -> PathBuf {
    dir.join(format!("{source}.jsonl"))
}

/// Appends one run entry to `<dir>/<source>.jsonl`, creating the directory
/// as needed. Returns the ledger file path.
///
/// # Errors
///
/// Propagates filesystem errors; serialization of the entry is infallible.
pub fn append_entry(dir: &Path, entry: &RunEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = ledger_path(dir, &entry.source);
    let line = serde_json::to_string(entry)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(file, "{line}")?;
    Ok(path)
}

/// Loads every entry from every `*.jsonl` file in `dir`, in sorted file
/// order then line order. A missing directory yields an empty history.
///
/// # Errors
///
/// Fails on unreadable files or unparseable lines, naming the offending
/// file and line number.
pub fn load_dir(dir: &Path) -> io::Result<Vec<RunEntry>> {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "jsonl").unwrap_or(false))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    files.sort();
    let mut entries = Vec::new();
    for path in files {
        let text = fs::read_to_string(&path)?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry: RunEntry = serde_json::from_str(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?;
            entries.push(entry);
        }
    }
    Ok(entries)
}

/// Re-baselines every source ledger in `dir`: clears the baseline flag on
/// all entries, then marks the **last** entry of each file as the new
/// baseline carrying `note` as its provenance. Files are rewritten
/// atomically (tmp + rename). Returns the number of ledger files updated.
///
/// # Errors
///
/// Propagates filesystem and parse errors; on error no file is replaced
/// mid-way (each file is swapped only after its tmp write succeeds).
pub fn rebaseline(dir: &Path, note: &str) -> io::Result<usize> {
    rebaseline_source(dir, note, None)
}

/// [`rebaseline`] restricted to one source ledger: only the
/// `<source>.jsonl` file is touched, every other series keeps its
/// baseline. `source = None` re-baselines everything.
///
/// # Errors
///
/// Same contract as [`rebaseline`].
pub fn rebaseline_source(dir: &Path, note: &str, source: Option<&str>) -> io::Result<usize> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "jsonl").unwrap_or(false))
        .filter(|p| source.is_none_or(|s| p.file_stem().and_then(|n| n.to_str()) == Some(s)))
        .collect();
    files.sort();
    let mut updated = 0usize;
    for path in &files {
        let text = fs::read_to_string(path)?;
        let mut entries: Vec<RunEntry> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(serde_json::from_str(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?);
        }
        if entries.is_empty() {
            continue;
        }
        for e in entries.iter_mut() {
            e.baseline = false;
        }
        let last = entries.last_mut().expect("non-empty");
        last.baseline = true;
        last.provenance = note.to_string();
        let mut out = String::new();
        for e in &entries {
            out.push_str(
                &serde_json::to_string(e)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            );
            out.push('\n');
        }
        let tmp = path.with_extension("jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, path)?;
        updated += 1;
    }
    Ok(updated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perfwatch-ledger-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(source: &str, label: &str, baseline: bool) -> RunEntry {
        RunEntry {
            source: source.to_string(),
            unix_ms: 1_700_000_000_000,
            label: label.to_string(),
            provenance: String::new(),
            baseline,
            series: vec![
                Series::delta("alpha:speedup", "ratio", "higher", true, vec![2.0, 2.1]),
                Series::proportion("warm_hit_ratio", "higher", true, 98, 100, 0.9),
            ],
        }
    }

    #[test]
    fn append_then_load_roundtrips() {
        let dir = tmpdir("roundtrip");
        let a = entry("kernels", "seed", true);
        let b = entry("campaign", "ci", false);
        append_entry(&dir, &a).unwrap();
        append_entry(&dir, &b).unwrap();
        append_entry(&dir, &a).unwrap();
        let loaded = load_dir(&dir).unwrap();
        // Sorted file order: campaign.jsonl before kernels.jsonl.
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0], b);
        assert_eq!(loaded[1], a);
        assert_eq!(loaded[2], a);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_empty() {
        let dir = tmpdir("missing");
        assert!(load_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn load_rejects_garbage_with_location() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("kernels.jsonl"), "not json\n").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("kernels.jsonl:1"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebaseline_marks_last_entry_and_records_note() {
        let dir = tmpdir("rebaseline");
        append_entry(&dir, &entry("kernels", "seed", true)).unwrap();
        append_entry(&dir, &entry("kernels", "candidate", false)).unwrap();
        append_entry(&dir, &entry("serve", "seed", true)).unwrap();
        let n = rebaseline(&dir, "new hardware").unwrap();
        assert_eq!(n, 2);
        let loaded = load_dir(&dir).unwrap();
        let kernels: Vec<&RunEntry> = loaded.iter().filter(|e| e.source == "kernels").collect();
        assert!(!kernels[0].baseline);
        assert!(kernels[1].baseline);
        assert_eq!(kernels[1].provenance, "new hardware");
        assert_eq!(kernels[1].label, "candidate");
        let serve: Vec<&RunEntry> = loaded.iter().filter(|e| e.source == "serve").collect();
        assert!(serve[0].baseline);
        assert_eq!(serve[0].provenance, "new hardware");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn env_dir_requires_nonempty() {
        std::env::remove_var("VDBENCH_PERF_HISTORY");
        assert!(env_dir().is_none());
        std::env::set_var("VDBENCH_PERF_HISTORY", "  ");
        assert!(env_dir().is_none());
        std::env::set_var("VDBENCH_PERF_HISTORY", "results/perf-history");
        assert_eq!(env_dir().unwrap(), PathBuf::from("results/perf-history"));
        std::env::remove_var("VDBENCH_PERF_HISTORY");
    }
}
