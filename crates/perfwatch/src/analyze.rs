//! The statistical decision rule behind `perfwatch check`.
//!
//! Every tracked series is classified by its ledger schema:
//!
//! - **Delta series** (no bound): pool the baseline-flagged samples and the
//!   candidate samples, compute the direction-signed relative delta
//!   `r` (positive = worse), interval it with a two-sample percentile
//!   bootstrap, and confirm with a permutation test on the raw samples.
//!   Gated delta series share one Holm–Bonferroni family, so checking
//!   many kernels does not inflate the false-alarm rate. A regression is
//!   declared only when *all three* hold: adjusted `p < α`, `r` exceeds
//!   the minimum effect size, and the CI excludes zero on the bad side.
//! - **Bound series**: proportions (`successes`/`trials`) are checked with
//!   a Wilson score interval against the recorded floor/ceiling; sample
//!   vectors use a bootstrap CI of the mean (point check below `n = 3`).
//!   A violation is declared only when the whole interval sits on the bad
//!   side of the bound — the statistical version of the old hand-picked
//!   threshold greps.
//! - **Advisory series** (`gate: false`): analyzed and rendered but never
//!   an exit-code failure; absolute wall-clock numbers land here because
//!   CI hardware differs from the baseline-recording host.
//!
//! All randomness derives from fnv1a hashes of the series identity, so the
//! verdicts and trend table are byte-identical across reruns and thread
//! counts (the bootstrap is schedule-independent by construction).

use crate::ledger::RunEntry;
use std::collections::BTreeMap;
use vdbench_stats::hypothesis::{holm_bonferroni, permutation_test_mean_diff};
use vdbench_stats::intervals::wilson;
use vdbench_stats::{derive_seed, Bootstrap, Confidence, SeededRng};

/// Tunable thresholds for the decision rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Family-wise significance level for the permutation confirmation.
    pub alpha: f64,
    /// Minimum direction-signed relative delta to call a regression (noise
    /// floor; 0.05 = 5%).
    pub min_effect: f64,
    /// Bootstrap replicates per series.
    pub replicates: usize,
    /// Permutation rounds per series.
    pub rounds: usize,
    /// Confidence level for interval estimates.
    pub level: f64,
    /// Restrict analysis to one source (ledger file stem), if set.
    pub source: Option<String>,
}

impl Default for Config {
    /// `α = 0.05`, 5% minimum effect, 2000 replicates / rounds, 95% CIs.
    fn default() -> Self {
        Config {
            alpha: 0.05,
            min_effect: 0.05,
            replicates: 2000,
            rounds: 2000,
            level: 0.95,
            source: None,
        }
    }
}

/// Outcome for one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Statistically confirmed regression (gated delta series).
    Regression,
    /// Statistically confirmed improvement.
    Improvement,
    /// No confirmed change.
    Stable,
    /// Whole confidence interval on the bad side of the recorded bound.
    BoundViolation,
    /// Bound satisfied (interval not entirely on the bad side).
    BoundOk,
    /// Advisory series: reported, never gated.
    Advisory,
    /// Not enough data to decide (e.g. baselines only, no candidate runs).
    Insufficient,
}

impl Verdict {
    /// Label as rendered in the trend table.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Stable => "stable",
            Verdict::BoundViolation => "BOUND VIOLATION",
            Verdict::BoundOk => "bound ok",
            Verdict::Advisory => "advisory",
            Verdict::Insufficient => "insufficient",
        }
    }

    /// Whether this verdict fails the gate.
    pub fn fails(&self) -> bool {
        matches!(self, Verdict::Regression | Verdict::BoundViolation)
    }
}

/// Per-series analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    /// Ledger source (file stem).
    pub source: String,
    /// Series name.
    pub name: String,
    /// Unit label.
    pub unit: String,
    /// `"higher"` or `"lower"` is good.
    pub direction: String,
    /// Whether the series can fail the gate.
    pub gate: bool,
    /// Pooled baseline sample count.
    pub n_baseline: usize,
    /// Pooled candidate sample count.
    pub n_candidate: usize,
    /// Mean of the pool the verdict was computed on (baseline side).
    pub baseline_mean: Option<f64>,
    /// Candidate-side mean (or the bound-checked pool's mean).
    pub candidate_mean: Option<f64>,
    /// Direction-signed relative delta in percent (positive = worse).
    pub delta_pct: Option<f64>,
    /// Confidence interval on the signed relative delta (delta series) or
    /// on the bounded quantity (bound series).
    pub ci: Option<(f64, f64)>,
    /// Recorded bound, for bound series.
    pub bound: Option<f64>,
    /// Raw permutation p-value (delta series with both pools).
    pub p_raw: Option<f64>,
    /// Holm-adjusted p-value (gated delta series only).
    pub p_adj: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
    /// Free-form qualifier (e.g. `point check (n<3)`, `no candidate runs`).
    pub note: String,
}

/// Full analysis over a ledger history.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Per-series reports, sorted by `(source, name)`.
    pub reports: Vec<SeriesReport>,
    /// The configuration the analysis ran under.
    pub config: Config,
}

impl Analysis {
    /// Reports whose verdict fails the gate.
    pub fn failures(&self) -> Vec<&SeriesReport> {
        self.reports.iter().filter(|r| r.verdict.fails()).collect()
    }

    /// Whether `perfwatch check` should exit nonzero.
    pub fn failed(&self) -> bool {
        self.reports.iter().any(|r| r.verdict.fails())
    }
}

/// Pooled state for one `(source, name)` series across the history.
#[derive(Debug, Default)]
struct Pool {
    unit: String,
    direction: String,
    gate: bool,
    bound: Option<f64>,
    base_samples: Vec<f64>,
    cand_samples: Vec<f64>,
    base_successes: u64,
    base_trials: u64,
    cand_successes: u64,
    cand_trials: u64,
    is_proportion: bool,
}

/// 64-bit FNV-1a, the crate's deterministic series → RNG-seed map.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Direction-signed relative delta: positive = candidate worse.
fn signed_delta(direction: &str, base_mean: f64, cand_mean: f64) -> f64 {
    if base_mean.abs() < 1e-12 {
        return 0.0;
    }
    match direction {
        "higher" => (base_mean - cand_mean) / base_mean,
        _ => (cand_mean - base_mean) / base_mean,
    }
}

/// Runs the decision rule over a loaded ledger history.
pub fn analyze(entries: &[RunEntry], config: &Config) -> Analysis {
    let mut pools: BTreeMap<(String, String), Pool> = BTreeMap::new();
    for entry in entries {
        if let Some(filter) = &config.source {
            if &entry.source != filter {
                continue;
            }
        }
        for s in &entry.series {
            let pool = pools
                .entry((entry.source.clone(), s.name.clone()))
                .or_default();
            // Metadata follows the most recent occurrence so schema tweaks
            // (unit renames, gate flips) take effect without ledger surgery.
            pool.unit = s.unit.clone();
            pool.direction = s.direction.clone();
            pool.gate = s.gate;
            pool.bound = s.bound;
            if let (Some(k), Some(n)) = (s.successes, s.trials) {
                pool.is_proportion = true;
                if entry.baseline {
                    pool.base_successes += k;
                    pool.base_trials += n;
                } else {
                    pool.cand_successes += k;
                    pool.cand_trials += n;
                }
            }
            if entry.baseline {
                pool.base_samples.extend_from_slice(&s.samples);
            } else {
                pool.cand_samples.extend_from_slice(&s.samples);
            }
        }
    }

    let mut reports: Vec<SeriesReport> = Vec::with_capacity(pools.len());
    for ((source, name), pool) in &pools {
        let mut report = SeriesReport {
            source: source.clone(),
            name: name.clone(),
            unit: pool.unit.clone(),
            direction: pool.direction.clone(),
            gate: pool.gate,
            n_baseline: pool.base_samples.len(),
            n_candidate: pool.cand_samples.len(),
            baseline_mean: None,
            candidate_mean: None,
            delta_pct: None,
            ci: None,
            bound: pool.bound,
            p_raw: None,
            p_adj: None,
            verdict: Verdict::Insufficient,
            note: String::new(),
        };
        let series_seed = derive_seed(fnv1a(source.as_bytes()), fnv1a(name.as_bytes()));
        if let Some(bound) = pool.bound {
            analyze_bound(pool, bound, series_seed, config, &mut report);
        } else {
            analyze_delta(pool, series_seed, config, &mut report);
        }
        reports.push(report);
    }

    // One Holm family across the gated delta series that produced a raw p.
    let family: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.gate && r.bound.is_none() && r.p_raw.is_some())
        .map(|(i, _)| i)
        .collect();
    let raw: Vec<f64> = family
        .iter()
        .map(|&i| reports[i].p_raw.expect("filtered on p_raw"))
        .collect();
    let adjusted = holm_bonferroni(&raw);
    for (&i, &p_adj) in family.iter().zip(adjusted.iter()) {
        let r = &mut reports[i];
        r.p_adj = Some(p_adj);
        let delta = r.delta_pct.unwrap_or(0.0) / 100.0;
        let (lo, hi) = r.ci.unwrap_or((0.0, 0.0));
        let significant = p_adj < config.alpha;
        r.verdict = if significant && delta > config.min_effect && lo > 0.0 {
            Verdict::Regression
        } else if significant && delta < -config.min_effect && hi < 0.0 {
            Verdict::Improvement
        } else {
            Verdict::Stable
        };
    }

    Analysis {
        reports,
        config: config.clone(),
    }
}

/// Delta rule: fills means, delta, CI and raw p; the verdict is assigned
/// after Holm adjustment (gated) or immediately (advisory).
fn analyze_delta(pool: &Pool, series_seed: u64, config: &Config, report: &mut SeriesReport) {
    if pool.base_samples.is_empty() || pool.cand_samples.is_empty() {
        report.note = if pool.cand_samples.is_empty() {
            "no candidate runs".to_string()
        } else {
            "no baseline".to_string()
        };
        report.verdict = if pool.gate {
            Verdict::Insufficient
        } else {
            Verdict::Advisory
        };
        report.baseline_mean = (!pool.base_samples.is_empty()).then(|| mean(&pool.base_samples));
        report.candidate_mean = (!pool.cand_samples.is_empty()).then(|| mean(&pool.cand_samples));
        return;
    }
    let mb = mean(&pool.base_samples);
    let mc = mean(&pool.cand_samples);
    report.baseline_mean = Some(mb);
    report.candidate_mean = Some(mc);
    let delta = signed_delta(&pool.direction, mb, mc);
    report.delta_pct = Some(delta * 100.0);

    let direction = pool.direction.clone();
    let stat = move |cand: &[f64], base: &[f64]| signed_delta(&direction, mean(base), mean(cand));
    let mut boot_rng = SeededRng::new(derive_seed(series_seed, 0));
    if let Ok(ci) = Bootstrap::new(config.replicates).two_sample_ci(
        &pool.cand_samples,
        &pool.base_samples,
        config.level,
        stat,
        &mut boot_rng,
    ) {
        report.ci = Some((ci.lower, ci.upper));
    }
    let mut perm_rng = SeededRng::new(derive_seed(series_seed, 1));
    if let Ok(test) = permutation_test_mean_diff(
        &pool.cand_samples,
        &pool.base_samples,
        config.rounds,
        &mut perm_rng,
    ) {
        report.p_raw = Some(test.p_value);
    }
    if !pool.gate {
        report.verdict = Verdict::Advisory;
    }
    if pool.base_samples.len() < 2 || pool.cand_samples.len() < 2 {
        report.note = "small n".to_string();
    }
}

/// Bound rule: Wilson interval for proportions, bootstrap CI of the mean
/// for sample vectors (point check below n = 3). The latest pool wins: a
/// candidate run is checked if present, otherwise the baseline itself.
fn analyze_bound(
    pool: &Pool,
    bound: f64,
    series_seed: u64,
    config: &Config,
    report: &mut SeriesReport,
) {
    // `bound` is a floor when higher is better, a ceiling when lower is.
    let floor = pool.direction == "higher";
    let violated = |lo: f64, hi: f64| if floor { hi < bound } else { lo > bound };
    let verdict = |bad: bool| {
        if !pool.gate {
            Verdict::Advisory
        } else if bad {
            Verdict::BoundViolation
        } else {
            Verdict::BoundOk
        }
    };
    if pool.is_proportion {
        let (k, n, from_baseline) = if pool.cand_trials > 0 {
            (pool.cand_successes, pool.cand_trials, false)
        } else {
            (pool.base_successes, pool.base_trials, true)
        };
        report.n_baseline = pool.base_trials as usize;
        report.n_candidate = pool.cand_trials as usize;
        if n == 0 {
            report.note = "no trials".to_string();
            return;
        }
        let conf = Confidence::new(config.level).unwrap_or(Confidence::P95);
        match wilson(k, n, conf) {
            Ok(iv) => {
                let m = Some(iv.estimate);
                if from_baseline {
                    report.baseline_mean = m;
                    report.note = "no candidate runs; bound checked on baseline".to_string();
                } else {
                    report.candidate_mean = m;
                }
                report.ci = Some((iv.lower, iv.upper));
                report.verdict = verdict(violated(iv.lower, iv.upper));
            }
            Err(e) => report.note = format!("wilson: {e}"),
        }
        return;
    }
    let (samples, from_baseline) = if pool.cand_samples.is_empty() {
        (&pool.base_samples, true)
    } else {
        (&pool.cand_samples, false)
    };
    if samples.is_empty() {
        report.note = "no samples".to_string();
        return;
    }
    let m = mean(samples);
    if from_baseline {
        report.baseline_mean = Some(m);
        report.note = "no candidate runs; bound checked on baseline".to_string();
    } else {
        report.candidate_mean = Some(m);
    }
    if samples.len() >= 3 {
        let mut rng = SeededRng::new(derive_seed(series_seed, 2));
        if let Ok(ci) =
            Bootstrap::new(config.replicates).percentile_ci(samples, config.level, mean, &mut rng)
        {
            report.ci = Some((ci.lower, ci.upper));
            report.verdict = verdict(violated(ci.lower, ci.upper));
            return;
        }
    }
    let note = "point check (n<3)";
    report.note = if report.note.is_empty() {
        note.to_string()
    } else {
        format!("{}; {note}", report.note)
    };
    report.verdict = verdict(if floor { m < bound } else { m > bound });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{RunEntry, Series};

    fn run(source: &str, baseline: bool, series: Vec<Series>) -> RunEntry {
        RunEntry {
            source: source.to_string(),
            unix_ms: 0,
            label: String::new(),
            provenance: String::new(),
            baseline,
            series,
        }
    }

    fn samples(center: f64, n: usize) -> Vec<f64> {
        // Small deterministic jitter around `center` (~±1%).
        (0..n)
            .map(|i| center * (1.0 + 0.01 * (((i * 7919) % 13) as f64 - 6.0) / 6.0))
            .collect()
    }

    #[test]
    fn injected_slowdown_is_flagged_and_noise_is_not() {
        let entries = vec![
            run(
                "kernels",
                true,
                vec![
                    Series::delta("fast:speedup", "ratio", "higher", true, samples(3.0, 24)),
                    Series::delta("noisy:speedup", "ratio", "higher", true, samples(2.0, 24)),
                ],
            ),
            run(
                "kernels",
                false,
                vec![
                    // 20% slowdown on the ratio: 3.0 → 2.4.
                    Series::delta("fast:speedup", "ratio", "higher", true, samples(2.4, 24)),
                    // Same distribution: pure noise.
                    Series::delta("noisy:speedup", "ratio", "higher", true, samples(2.0, 24)),
                ],
            ),
        ];
        let analysis = analyze(&entries, &Config::default());
        assert!(analysis.failed());
        let by_name = |n: &str| {
            analysis
                .reports
                .iter()
                .find(|r| r.name == n)
                .expect("series present")
        };
        assert_eq!(by_name("fast:speedup").verdict, Verdict::Regression);
        assert_eq!(by_name("noisy:speedup").verdict, Verdict::Stable);
        assert!(by_name("fast:speedup").p_adj.expect("adjusted") < 0.05);
        assert!(by_name("fast:speedup").delta_pct.expect("delta") > 15.0);
    }

    #[test]
    fn improvement_is_not_a_failure() {
        let entries = vec![
            run(
                "kernels",
                true,
                vec![Series::delta(
                    "k:speedup",
                    "ratio",
                    "higher",
                    true,
                    samples(2.0, 24),
                )],
            ),
            run(
                "kernels",
                false,
                vec![Series::delta(
                    "k:speedup",
                    "ratio",
                    "higher",
                    true,
                    samples(3.0, 24),
                )],
            ),
        ];
        let analysis = analyze(&entries, &Config::default());
        assert!(!analysis.failed());
        assert_eq!(analysis.reports[0].verdict, Verdict::Improvement);
    }

    #[test]
    fn baselines_only_is_insufficient_not_failing() {
        let entries = vec![run(
            "kernels",
            true,
            vec![Series::delta(
                "k:speedup",
                "ratio",
                "higher",
                true,
                samples(2.0, 10),
            )],
        )];
        let analysis = analyze(&entries, &Config::default());
        assert!(!analysis.failed());
        assert_eq!(analysis.reports[0].verdict, Verdict::Insufficient);
        assert_eq!(analysis.reports[0].note, "no candidate runs");
    }

    #[test]
    fn advisory_series_never_fail() {
        let entries = vec![
            run(
                "campaign",
                true,
                vec![Series::delta(
                    "total_millis",
                    "ms",
                    "lower",
                    false,
                    samples(100.0, 8),
                )],
            ),
            run(
                "campaign",
                false,
                // Massive slowdown, but the series is advisory.
                vec![Series::delta(
                    "total_millis",
                    "ms",
                    "lower",
                    false,
                    samples(500.0, 8),
                )],
            ),
        ];
        let analysis = analyze(&entries, &Config::default());
        assert!(!analysis.failed());
        assert_eq!(analysis.reports[0].verdict, Verdict::Advisory);
        assert!(analysis.reports[0].delta_pct.expect("delta") > 100.0);
    }

    #[test]
    fn proportion_bound_gates_with_wilson() {
        // 98/100 warm hits against a 0.9 floor: clearly satisfied.
        let good = vec![run(
            "serve",
            true,
            vec![Series::proportion(
                "warm_hit_ratio",
                "higher",
                true,
                98,
                100,
                0.9,
            )],
        )];
        let analysis = analyze(&good, &Config::default());
        assert_eq!(analysis.reports[0].verdict, Verdict::BoundOk);
        assert!(!analysis.failed());
        // 50/100 against 0.9: the whole interval sits below the floor.
        let bad = vec![
            run(
                "serve",
                true,
                vec![Series::proportion(
                    "warm_hit_ratio",
                    "higher",
                    true,
                    98,
                    100,
                    0.9,
                )],
            ),
            run(
                "serve",
                false,
                vec![Series::proportion(
                    "warm_hit_ratio",
                    "higher",
                    true,
                    50,
                    100,
                    0.9,
                )],
            ),
        ];
        let analysis = analyze(&bad, &Config::default());
        assert_eq!(analysis.reports[0].verdict, Verdict::BoundViolation);
        assert!(analysis.failed());
    }

    #[test]
    fn sample_bound_uses_point_check_for_tiny_n() {
        let entries = vec![run(
            "scale",
            true,
            vec![Series::bounded(
                "rss_growth",
                "ratio",
                "lower",
                true,
                vec![1.1],
                1.5,
            )],
        )];
        let analysis = analyze(&entries, &Config::default());
        assert_eq!(analysis.reports[0].verdict, Verdict::BoundOk);
        assert!(analysis.reports[0].note.contains("point check"));
        let entries = vec![run(
            "scale",
            true,
            vec![Series::bounded(
                "rss_growth",
                "ratio",
                "lower",
                true,
                vec![2.0],
                1.5,
            )],
        )];
        assert!(analyze(&entries, &Config::default()).failed());
    }

    #[test]
    fn source_filter_restricts_family() {
        let entries = vec![
            run(
                "kernels",
                true,
                vec![Series::delta(
                    "k:speedup",
                    "ratio",
                    "higher",
                    true,
                    samples(2.0, 8),
                )],
            ),
            run(
                "serve",
                true,
                vec![Series::proportion(
                    "warm_hit_ratio",
                    "higher",
                    true,
                    9,
                    10,
                    0.5,
                )],
            ),
        ];
        let config = Config {
            source: Some("serve".to_string()),
            ..Config::default()
        };
        let analysis = analyze(&entries, &config);
        assert_eq!(analysis.reports.len(), 1);
        assert_eq!(analysis.reports[0].source, "serve");
    }

    #[test]
    fn holm_family_suppresses_borderline_single_series() {
        // A delta just past min_effect with modest evidence: with many
        // sibling series in the family, Holm must keep it Stable unless
        // the evidence is strong. Build 6 stable series + 1 borderline.
        let mut base = Vec::new();
        let mut cand = Vec::new();
        for i in 0..6 {
            let name = format!("k{i}:speedup");
            base.push(Series::delta(
                name.clone(),
                "ratio",
                "higher",
                true,
                samples(2.0, 12),
            ));
            cand.push(Series::delta(
                name,
                "ratio",
                "higher",
                true,
                samples(2.0, 12),
            ));
        }
        base.push(Series::delta(
            "edge:speedup",
            "ratio",
            "higher",
            true,
            samples(2.0, 4),
        ));
        cand.push(Series::delta(
            "edge:speedup",
            "ratio",
            "higher",
            true,
            samples(1.85, 4),
        ));
        let entries = vec![run("kernels", true, base), run("kernels", false, cand)];
        let analysis = analyze(&entries, &Config::default());
        let edge = analysis
            .reports
            .iter()
            .find(|r| r.name == "edge:speedup")
            .expect("present");
        assert!(edge.p_adj.expect("adjusted") >= edge.p_raw.expect("raw"));
    }

    #[test]
    fn analysis_is_deterministic_across_thread_counts() {
        let entries = vec![
            run(
                "kernels",
                true,
                vec![Series::delta(
                    "k:speedup",
                    "ratio",
                    "higher",
                    true,
                    samples(3.0, 20),
                )],
            ),
            run(
                "kernels",
                false,
                vec![Series::delta(
                    "k:speedup",
                    "ratio",
                    "higher",
                    true,
                    samples(2.4, 20),
                )],
            ),
        ];
        let run_with = |threads: &str| {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let a = analyze(&entries, &Config::default());
            std::env::remove_var("RAYON_NUM_THREADS");
            a
        };
        assert_eq!(run_with("1"), run_with("6"));
    }
}
