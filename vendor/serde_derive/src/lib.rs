//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Hand-rolled `TokenStream` parsing (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable). Supports exactly
//! what this workspace derives on: non-generic structs (named, tuple,
//! unit) and enums (unit, tuple and struct variants), with arbitrary
//! other attributes/doc comments skipped. `#[serde(...)]` attributes are
//! intentionally unsupported — the workspace does not use any.
//!
//! Generated code follows serde_json's representation conventions:
//! structs → objects, newtype structs → their inner value, unit enum
//! variants → strings, data-carrying variants → externally tagged
//! single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips leading attributes (`#[...]`) in a token cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, `pub(in ...)`).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated entries in a token list (angle-bracket
/// aware for generic types like `BTreeMap<String, String>`).
fn count_top_level_entries(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut entries = 1usize;
    let mut saw_tokens_in_entry = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens_in_entry = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                saw_tokens_in_entry = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                entries += 1;
                saw_tokens_in_entry = false;
            }
            _ => saw_tokens_in_entry = true,
        }
    }
    if !saw_tokens_in_entry {
        // Trailing comma: last entry is empty.
        entries -= 1;
    }
    entries
}

/// Parses named fields from the tokens inside a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect `:` then skip the type until a top-level comma.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_fields_group(group: &proc_macro::Group) -> Fields {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match group.delimiter() {
        Delimiter::Brace => Fields::Named(parse_named_fields(&tokens)),
        Delimiter::Parenthesis => Fields::Tuple(count_top_level_entries(&tokens)),
        other => panic!("serde_derive: unexpected field delimiter {other:?}"),
    }
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) => {
                let f = parse_fields_group(g);
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip to (and past) the next top-level comma (covers explicit
        // discriminants, which serde types here never use anyway).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) => parse_fields_group(g),
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            Item::Enum {
                name,
                variants: parse_variants(&body_tokens),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))])",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{pairs}]))])",
                                pairs = pairs.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(",\n"),
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(value, \"{f}\")?"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let items = value.as_array().ok_or_else(|| \
                         ::serde::DeError::expected(\"array\", value))?; \
                         if items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::new(\"wrong tuple arity\")); }} \
                         ::std::result::Result::Ok({name}({gets})) }}",
                        gets = gets.join(", "),
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname})",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let items = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", inner))?; \
                                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::new(\"wrong variant arity\")); }} \
                                 ::std::result::Result::Ok({name}::{vname}({gets})) }}",
                                gets = gets.join(", "),
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::from_field(inner, \"{f}\")?"))
                                .collect();
                            format!(
                                "\"{vname}\" => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {inits} }})",
                                inits = inits.join(", "),
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                tagged_arms = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
