//! Offline stand-in for the subset of `serde` used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework with serde's *call-site API shape*:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums (no
//! `#[serde(...)]` attributes are used anywhere in the workspace), the
//! [`Serialize`]/[`Deserialize`] traits, and `serde::de::DeserializeOwned`
//! as a bound. The data model is a JSON-shaped [`Value`] tree; the
//! sibling `serde_json` vendor crate renders and parses it with the same
//! externally-tagged enum conventions real serde_json uses, so persisted
//! artifacts stay human-readable and structurally compatible.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every [`Serialize`] impl produces and
/// every [`Deserialize`] impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX` or the
    /// source type is unsigned).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map (preserves field order for stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable path-less message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X" convenience constructor.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError::new(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into the self-describing data model.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the self-describing data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Bound-compatibility module mirroring `serde::de`.

    /// Marker for types deserializable without borrowing from the input —
    /// every [`crate::Deserialize`] type qualifies in this value-based
    /// framework.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Looks up and deserializes a struct field; a missing key deserializes as
/// [`Value::Null`] so `Option` fields tolerate absence, mirroring how this
/// workspace's persisted artifacts evolve.
pub fn from_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::new(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *value {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *value {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            // Non-finite floats serialize as null (serde_json convention).
            Value::Null => Ok(f64::NAN),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Map keys must render as JSON strings; this mirrors serde_json's map-key
/// constraint (strings and unit enum variants qualify).
fn key_to_string(value: Value) -> Result<String, DeError> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(DeError::expected("string-like map key", &other)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key =
                        key_to_string(k.to_value()).expect("map keys must serialize as strings");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| {
                let key = K::from_value(&Value::Str(k.clone()))
                    .map_err(|e| DeError::new(format!("map key `{k}`: {e}")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected array of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip_through_values() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let pair = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }
}
