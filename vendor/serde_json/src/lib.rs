//! Offline stand-in for the subset of `serde_json` 1.x used by the
//! workspace: [`to_string`], [`to_string_pretty`], and [`from_str`] over
//! the JSON-shaped [`serde::Value`] model of the vendored `serde` crate.
//!
//! The writer escapes control characters, prints floats with Rust's
//! shortest-roundtrip `{:?}` formatting (so `1.0` stays `1.0`, matching
//! the real crate's `float_roundtrip` behaviour closely enough for the
//! workspace's roundtrip tests), and maps non-finite floats to `null`.
//! The reader is a plain recursive-descent parser.

#![forbid(unsafe_code)]

use serde::{DeError, Value};
use std::fmt;

/// Error raised by [`from_str`] (and, for API parity, by [`to_string`],
/// although serialization in this stand-in cannot fail).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest-roundtrip formatting and always keeps a
        // fractional part (`1.0`, not `1`), matching serde_json's output for
        // whole floats.
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a following \uXXXX low
                                // surrogate and combine the pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(Error::new("invalid unicode escape")),
                            }
                        }
                        _ => {
                            return Err(Error::new(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the next char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        let x: f64 = from_str("0.30000000000000004").unwrap();
        assert_eq!(x, 0.30000000000000004);
        let s: String = from_str("\"caf\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "café 😀");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let opt: Option<i64> = from_str("null").unwrap();
        assert_eq!(opt, None);
        let nested: Vec<Vec<bool>> = from_str("[[true],[false, true],[]]").unwrap();
        assert_eq!(nested, vec![vec![true], vec![false, true], vec![]]);
        assert_eq!(to_string(&nested).unwrap(), "[[true],[false,true],[]]");
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &x in &[1.0, 0.5, 1e-9, 123456.789, f64::MAX, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "roundtrip failed for {x} via {s}");
        }
        // Non-finite floats serialize as null, which deserializes to NaN.
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let nan: f64 = from_str("null").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("truex").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn pretty_prints() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
