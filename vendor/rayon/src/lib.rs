//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small data-parallelism layer with rayon's *call-site API shape*:
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = (0..100usize).into_par_iter().map(|i| (i * i) as u64).collect();
//! assert_eq!(squares[7], 49);
//! let doubled: Vec<i32> = [1, 2, 3].par_iter().map(|x| x * 2).collect();
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```
//!
//! Semantics guaranteed (and relied on by the campaign engine's
//! determinism contract, see DESIGN.md):
//!
//! * **Order preservation** — `collect` returns results in input order
//!   regardless of which worker computed them.
//! * **Execution-count exactness** — the mapping closure runs exactly once
//!   per item.
//! * **`RAYON_NUM_THREADS`** — honored *per call* (value `1` forces the
//!   strictly serial path, which the determinism regression tests use).
//!
//! Work is distributed as contiguous chunks over `std::thread::scope`
//! workers: no work stealing, which is fine for this workspace's
//! embarrassingly parallel loops whose per-item cost is roughly uniform.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads a parallel call will use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// High-water mark of workers any single parallel call has actually run
/// on. [`current_num_threads`] is the *requested* width; small inputs use
/// fewer workers (one chunk each), and the serial path uses exactly one.
static MAX_THREADS_USED: AtomicUsize = AtomicUsize::new(0);

/// The largest number of workers any parallel call in this process has
/// actually used so far (0 before the first call). Instrumentation reads
/// this back to report requested vs. realized parallelism.
pub fn max_threads_used() -> usize {
    MAX_THREADS_USED.load(Ordering::Relaxed)
}

/// Resets the [`max_threads_used`] watermark (tests and per-campaign
/// instrumentation).
pub fn reset_max_threads_used() {
    MAX_THREADS_USED.store(0, Ordering::Relaxed);
}

/// Order-preserving parallel map over `0..len`, chunked across scoped
/// threads. The closure receives the item index.
fn par_map_indices<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        MAX_THREADS_USED.fetch_max(len.min(1), Ordering::Relaxed);
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    // The workers actually spawned: one per chunk, ≤ the requested width.
    MAX_THREADS_USED.fetch_max(len.div_ceil(chunk), Ordering::Relaxed);
    let mut out = Vec::with_capacity(len);
    let chunks: Vec<Vec<U>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<U>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Order-preserving parallel *chunk fold* over `0..len`: each worker folds
/// its contiguous index chunk into one accumulator seeded by `init`, and
/// the per-chunk accumulators are returned in chunk order (left to right).
///
/// This is the engine behind both [`MapRangePar::map_init`]-style per-worker
/// scratch reuse and [`FoldSlicePar::reduce`]: the per-item closure runs
/// exactly once per index, chunks are contiguous, and combining the chunk
/// accumulators left-to-right is equivalent to a serial fold whenever the
/// fold operation is associative over concatenation.
fn par_fold_chunks<A, ID, F>(len: usize, init: ID, fold: F) -> Vec<A>
where
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, usize) -> A + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        MAX_THREADS_USED.fetch_max(len.min(1), Ordering::Relaxed);
        if len == 0 {
            return Vec::new();
        }
        return vec![(0..len).fold(init(), &fold)];
    }
    let chunk = len.div_ceil(threads);
    MAX_THREADS_USED.fetch_max(len.div_ceil(chunk), Ordering::Relaxed);
    std::thread::scope(|scope| {
        let init = &init;
        let fold = &fold;
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || (start..end).fold(init(), fold))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Borrowed parallel iterator over a slice.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

/// Parallel iterator over an index range.
pub struct RangePar {
    range: Range<usize>,
}

/// Lazily mapped slice iterator; realized by [`MapSlicePar::collect`] /
/// [`MapSlicePar::for_each`].
pub struct MapSlicePar<'a, T, F> {
    slice: &'a [T],
    f: F,
}

/// Lazily mapped range iterator; realized by [`MapRangePar::collect`].
pub struct MapRangePar<F> {
    range: Range<usize>,
    f: F,
}

impl<'a, T: Sync> SlicePar<'a, T> {
    /// Maps each item (in parallel at realization time).
    pub fn map<U, F>(self, f: F) -> MapSlicePar<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        MapSlicePar {
            slice: self.slice,
            f,
        }
    }

    /// Folds items into per-worker accumulators (rayon's `fold`): each
    /// worker's contiguous chunk is folded left-to-right into one
    /// accumulator seeded by `identity`. Combine the chunk accumulators
    /// with [`FoldSlicePar::reduce`]. Compared to `map(..).collect::<Vec<
    /// Vec<_>>>()` + flatten, this materializes one accumulator per
    /// *worker*, not one per *item*.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> FoldSlicePar<'a, T, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
    {
        FoldSlicePar {
            slice: self.slice,
            identity,
            fold_op,
        }
    }
}

/// Deferred per-worker fold over a slice; realized by
/// [`FoldSlicePar::reduce`].
pub struct FoldSlicePar<'a, T, ID, F> {
    slice: &'a [T],
    identity: ID,
    fold_op: F,
}

impl<'a, T: Sync, A: Send, ID: Fn() -> A + Sync, F: Fn(A, &'a T) -> A + Sync>
    FoldSlicePar<'a, T, ID, F>
{
    /// Combines the per-worker accumulators **left-to-right in chunk
    /// order** with `reduce_op`, starting from `identity()`. Because chunks
    /// are contiguous and ordered, an associative, order-respecting
    /// `reduce_op` (e.g. `Vec::extend` concatenation) yields exactly the
    /// serial fold result regardless of worker count.
    pub fn reduce<RID, R>(self, identity: RID, reduce_op: R) -> A
    where
        RID: Fn() -> A,
        R: Fn(A, A) -> A,
    {
        let slice = self.slice;
        let fold_op = &self.fold_op;
        let chunks = par_fold_chunks(slice.len(), &self.identity, |acc, i| {
            fold_op(acc, &slice[i])
        });
        chunks.into_iter().fold(identity(), reduce_op)
    }
}

/// Lazily mapped range iterator with per-worker state; realized by
/// [`MapInitRangePar::collect`].
pub struct MapInitRangePar<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<S, U: Send, INIT: Fn() -> S + Sync, F: Fn(&mut S, usize) -> U + Sync>
    MapInitRangePar<INIT, F>
{
    /// Runs the map across the worker pool, initializing one state per
    /// worker chunk, and collects results in input order.
    ///
    /// The state is created *inside* each worker and dropped there — it
    /// never crosses a thread boundary, so `S` needs no `Send` bound (a
    /// scratch buffer over `!Send` contents still works).
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let init = &self.init;
        let f = &self.f;
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 {
            MAX_THREADS_USED.fetch_max(len.min(1), Ordering::Relaxed);
            if len == 0 {
                return std::iter::empty().collect();
            }
            let mut state = init();
            return (0..len).map(|i| f(&mut state, start + i)).collect();
        }
        let chunk = len.div_ceil(threads);
        MAX_THREADS_USED.fetch_max(len.div_ceil(chunk), Ordering::Relaxed);
        let chunks: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..len)
                .step_by(chunk)
                .map(|chunk_start| {
                    let end = (chunk_start + chunk).min(len);
                    scope.spawn(move || {
                        let mut state = init();
                        (chunk_start..end)
                            .map(|i| f(&mut state, start + i))
                            .collect::<Vec<U>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        chunks.into_iter().flatten().collect()
    }
}

impl RangePar {
    /// Maps each index (in parallel at realization time).
    pub fn map<U, F>(self, f: F) -> MapRangePar<F>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        MapRangePar {
            range: self.range,
            f,
        }
    }

    /// Maps each index with **per-worker state** (rayon's `map_init`): the
    /// `init` closure runs once per worker chunk and the resulting state is
    /// threaded by `&mut` through every item that worker processes. The
    /// canonical use is a reusable scratch buffer — the mapped output must
    /// not depend on state left behind by previous items, which is what
    /// keeps results identical at any `RAYON_NUM_THREADS`.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> MapInitRangePar<INIT, F>
    where
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> U + Sync,
    {
        MapInitRangePar {
            range: self.range,
            init,
            f,
        }
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> MapSlicePar<'a, T, F> {
    /// Runs the map across the worker pool and collects results in input
    /// order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let slice = self.slice;
        let f = &self.f;
        par_map_indices(slice.len(), |i| f(&slice[i]))
            .into_iter()
            .collect()
    }

    /// Runs the map for its side effects.
    pub fn for_each(self) {
        let _: Vec<U> = self.collect();
    }
}

impl<U: Send, F: Fn(usize) -> U + Sync> MapRangePar<F> {
    /// Runs the map across the worker pool and collects results in input
    /// order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        par_map_indices(len, |i| f(start + i)).into_iter().collect()
    }
}

/// `par_iter()` entry point for borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter;

    /// Borrowing parallel iterator (rayon-compatible name).
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// `into_par_iter()` entry point for owned iterables.
pub trait IntoParallelIterator {
    /// The item type.
    type Item;
    /// The parallel iterator type.
    type Iter;

    /// Consuming parallel iterator (rayon-compatible name).
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangePar;

    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

pub mod prelude {
    //! Rayon-style glob import: `use rayon::prelude::*;`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_map_preserves_order() {
        let data: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_preserves_order() {
        let out: Vec<usize> = (0..257usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 257);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_watermark_is_recorded() {
        let _: Vec<usize> = (0..64usize).into_par_iter().map(|i| i).collect();
        // Sibling tests share the process-wide watermark, so only the
        // invariant is asserted: at least one worker ran, and the reset
        // hook exists.
        assert!(super::max_threads_used() >= 1);
        super::reset_max_threads_used();
        let _: Vec<usize> = (0..4usize).into_par_iter().map(|i| i).collect();
        assert!(super::max_threads_used() >= 1);
    }

    #[test]
    fn map_init_state_is_scratch_only() {
        // Output must be independent of worker count even though each
        // worker reuses one scratch buffer across its whole chunk.
        let compute = || -> Vec<u64> {
            (0..333usize)
                .into_par_iter()
                .map_init(Vec::<u64>::new, |scratch, i| {
                    scratch.clear();
                    scratch.extend((0..=i as u64).take(8));
                    scratch.iter().sum()
                })
                .collect()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = compute();
        std::env::set_var("RAYON_NUM_THREADS", "5");
        let parallel = compute();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 333);
    }

    #[test]
    fn fold_reduce_concatenation_preserves_order() {
        let data: Vec<usize> = (0..1013).collect();
        let folded: Vec<usize> = data
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x * 3);
                acc
            })
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert_eq!(folded, (0..1013).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_empty_slice() {
        let empty: Vec<u8> = Vec::new();
        let folded: Vec<u8> = empty
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert!(folded.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        // The env var is honored per call, so flipping it inside one test
        // process exercises both paths.
        let compute = || -> Vec<u64> {
            (0..500usize)
                .into_par_iter()
                .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
                .collect()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = compute();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let parallel = compute();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(serial, parallel);
    }
}
