//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small data-parallelism layer with rayon's *call-site API shape*:
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = (0..100usize).into_par_iter().map(|i| (i * i) as u64).collect();
//! assert_eq!(squares[7], 49);
//! let doubled: Vec<i32> = [1, 2, 3].par_iter().map(|x| x * 2).collect();
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```
//!
//! Semantics guaranteed (and relied on by the campaign engine's
//! determinism contract, see DESIGN.md):
//!
//! * **Order preservation** — `collect` returns results in input order
//!   regardless of which worker computed them.
//! * **Execution-count exactness** — the mapping closure runs exactly once
//!   per item.
//! * **`RAYON_NUM_THREADS`** — honored *per call* (value `1` forces the
//!   strictly serial path, which the determinism regression tests use).
//!
//! Work is distributed as contiguous chunks over `std::thread::scope`
//! workers: no work stealing, which is fine for this workspace's
//! embarrassingly parallel loops whose per-item cost is roughly uniform.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads a parallel call will use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// High-water mark of workers any single parallel call has actually run
/// on. [`current_num_threads`] is the *requested* width; small inputs use
/// fewer workers (one chunk each), and the serial path uses exactly one.
static MAX_THREADS_USED: AtomicUsize = AtomicUsize::new(0);

/// The largest number of workers any parallel call in this process has
/// actually used so far (0 before the first call). Instrumentation reads
/// this back to report requested vs. realized parallelism.
pub fn max_threads_used() -> usize {
    MAX_THREADS_USED.load(Ordering::Relaxed)
}

/// Resets the [`max_threads_used`] watermark (tests and per-campaign
/// instrumentation).
pub fn reset_max_threads_used() {
    MAX_THREADS_USED.store(0, Ordering::Relaxed);
}

/// Order-preserving parallel map over `0..len`, chunked across scoped
/// threads. The closure receives the item index.
fn par_map_indices<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        MAX_THREADS_USED.fetch_max(len.min(1), Ordering::Relaxed);
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    // The workers actually spawned: one per chunk, ≤ the requested width.
    MAX_THREADS_USED.fetch_max(len.div_ceil(chunk), Ordering::Relaxed);
    let mut out = Vec::with_capacity(len);
    let chunks: Vec<Vec<U>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<U>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Borrowed parallel iterator over a slice.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

/// Parallel iterator over an index range.
pub struct RangePar {
    range: Range<usize>,
}

/// Lazily mapped slice iterator; realized by [`MapSlicePar::collect`] /
/// [`MapSlicePar::for_each`].
pub struct MapSlicePar<'a, T, F> {
    slice: &'a [T],
    f: F,
}

/// Lazily mapped range iterator; realized by [`MapRangePar::collect`] /
/// [`MapRangePar::for_each`].
pub struct MapRangePar<F> {
    range: Range<usize>,
    f: F,
}

impl<'a, T: Sync> SlicePar<'a, T> {
    /// Maps each item (in parallel at realization time).
    pub fn map<U, F>(self, f: F) -> MapSlicePar<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        MapSlicePar {
            slice: self.slice,
            f,
        }
    }
}

impl RangePar {
    /// Maps each index (in parallel at realization time).
    pub fn map<U, F>(self, f: F) -> MapRangePar<F>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        MapRangePar {
            range: self.range,
            f,
        }
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> MapSlicePar<'a, T, F> {
    /// Runs the map across the worker pool and collects results in input
    /// order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let slice = self.slice;
        let f = &self.f;
        par_map_indices(slice.len(), |i| f(&slice[i]))
            .into_iter()
            .collect()
    }

    /// Runs the map for its side effects.
    pub fn for_each(self) {
        let _: Vec<U> = self.collect();
    }
}

impl<U: Send, F: Fn(usize) -> U + Sync> MapRangePar<F> {
    /// Runs the map across the worker pool and collects results in input
    /// order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        par_map_indices(len, |i| f(start + i)).into_iter().collect()
    }
}

/// `par_iter()` entry point for borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter;

    /// Borrowing parallel iterator (rayon-compatible name).
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// `into_par_iter()` entry point for owned iterables.
pub trait IntoParallelIterator {
    /// The item type.
    type Item;
    /// The parallel iterator type.
    type Iter;

    /// Consuming parallel iterator (rayon-compatible name).
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangePar;

    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

pub mod prelude {
    //! Rayon-style glob import: `use rayon::prelude::*;`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_map_preserves_order() {
        let data: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_preserves_order() {
        let out: Vec<usize> = (0..257usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 257);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_watermark_is_recorded() {
        let _: Vec<usize> = (0..64usize).into_par_iter().map(|i| i).collect();
        // Sibling tests share the process-wide watermark, so only the
        // invariant is asserted: at least one worker ran, and the reset
        // hook exists.
        assert!(super::max_threads_used() >= 1);
        super::reset_max_threads_used();
        let _: Vec<usize> = (0..4usize).into_par_iter().map(|i| i).collect();
        assert!(super::max_threads_used() >= 1);
    }

    #[test]
    fn serial_and_parallel_agree() {
        // The env var is honored per call, so flipping it inside one test
        // process exercises both paths.
        let compute = || -> Vec<u64> {
            (0..500usize)
                .into_par_iter()
                .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
                .collect()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = compute();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let parallel = compute();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(serial, parallel);
    }
}
