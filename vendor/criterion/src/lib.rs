//! Offline stand-in for the subset of `criterion` 0.5 used by the
//! workspace benches.
//!
//! Provides [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple adaptive loop (warm-up, then timed batches until a wall-clock
//! budget is spent) reporting mean ns/iteration — no statistics engine,
//! no plotting, but stable enough to compare serial vs parallel variants
//! of the same workload on one machine.
//!
//! The per-benchmark budget defaults to 200 ms and can be tuned with the
//! `VDBENCH_BENCH_MS` environment variable (e.g. `VDBENCH_BENCH_MS=50
//! cargo bench` for a smoke run).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn bench_budget() -> Duration {
    if test_mode() {
        return Duration::ZERO;
    }
    let ms = std::env::var("VDBENCH_BENCH_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Whether the bench binary was invoked in criterion's `--test` mode
/// (`cargo bench -- --test`): every routine runs exactly once, as a smoke
/// test, with no timed batches. CI uses this to validate bench targets
/// cheaply.
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    budget: Duration,
    batch_means_ns: Vec<f64>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            samples: 0,
            elapsed: Duration::ZERO,
            budget,
            batch_means_ns: Vec::new(),
        }
    }

    /// Times the routine: one warm-up call, then batches until the budget
    /// is exhausted. In [`test_mode`] (zero budget) the routine runs
    /// exactly once and the warm-up timing is the reported sample.
    ///
    /// Each timed batch also records its own mean ns/iteration into the
    /// batch-sample vector, giving downstream consumers (the perf-history
    /// ledger) a raw sample distribution instead of a single pooled mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing.
        let warm_start = Instant::now();
        black_box(routine());
        let first = warm_start.elapsed().max(Duration::from_nanos(1));
        if self.budget.is_zero() {
            self.samples = 1;
            self.elapsed = first;
            self.batch_means_ns.push(first.as_nanos() as f64);
            return;
        }
        let per_batch = (self.budget.as_nanos() / 10 / first.as_nanos()).clamp(1, 100_000) as u64;

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let batch_elapsed = start.elapsed();
            self.elapsed += batch_elapsed;
            self.samples += per_batch;
            self.batch_means_ns
                .push(batch_elapsed.as_nanos() as f64 / per_batch as f64);
        }
    }

    /// Mean nanoseconds per iteration measured so far (`NaN` before any
    /// sample).
    fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            f64::NAN
        } else {
            self.elapsed.as_nanos() as f64 / self.samples as f64
        }
    }

    fn report(&self) -> String {
        if self.samples == 0 {
            return "no samples".to_string();
        }
        let ns = self.elapsed.as_nanos() as f64 / self.samples as f64;
        if ns >= 1e9 {
            format!("{:>10.3} s/iter  ({} iters)", ns / 1e9, self.samples)
        } else if ns >= 1e6 {
            format!("{:>10.3} ms/iter ({} iters)", ns / 1e6, self.samples)
        } else if ns >= 1e3 {
            format!("{:>10.3} µs/iter ({} iters)", ns / 1e3, self.samples)
        } else {
            format!("{:>10.1} ns/iter ({} iters)", ns, self.samples)
        }
    }
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// One completed measurement: benchmark id plus the mean ns/iteration.
/// Custom bench mains (e.g. the kernel suite's `BENCH_kernels.json`
/// emitter) read these back via [`Criterion::results`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id as printed.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub samples: u64,
    /// Per-batch mean ns/iteration, one entry per timed batch (exactly one
    /// in `--test` mode). The raw sample vector behind `mean_ns`, suitable
    /// for resampling-based regression checks.
    pub batch_means_ns: Vec<f64>,
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(bench_budget());
        f(&mut b);
        println!("bench {id:<48} {}", b.report());
        self.results.push(BenchResult {
            id: id.to_string(),
            mean_ns: b.mean_ns(),
            samples: b.samples,
            batch_means_ns: b.batch_means_ns,
        });
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
        }
    }

    /// Every measurement this driver has completed, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(bench_budget());
        f(&mut b, input);
        let full_id = format!("{}/{}", self.name, id.id);
        println!("bench {:<48} {}", full_id, b.report());
        self.criterion.results.push(BenchResult {
            id: full_id,
            mean_ns: b.mean_ns(),
            samples: b.samples,
            batch_means_ns: b.batch_means_ns,
        });
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("VDBENCH_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        std::env::remove_var("VDBENCH_BENCH_MS");
    }

    #[test]
    fn results_are_collected() {
        std::env::set_var("VDBENCH_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("collect/one", |b| b.iter(|| black_box(3u64) * 7));
        let mut group = c.benchmark_group("collect");
        group.bench_with_input(BenchmarkId::from_parameter(2), &2u64, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
        std::env::remove_var("VDBENCH_BENCH_MS");
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "collect/one");
        assert_eq!(results[1].id, "collect/2");
        assert!(results.iter().all(|r| r.mean_ns > 0.0 && r.samples > 0));
        assert!(results
            .iter()
            .all(|r| !r.batch_means_ns.is_empty() && r.batch_means_ns.iter().all(|&m| m > 0.0)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::new("gen", 7).id, "gen/7");
    }
}
