//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of exactly the surface
//! it consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngCore::next_u64`], [`Rng::gen`] (for `f64`/`u64`/`u32`/`bool`) and
//! [`Rng::gen_range`] over primitive ranges.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `rand`'s ChaCha12, but
//! every consumer in this workspace only requires *determinism for a given
//! seed*, never a specific stream. All sampling here is reproducible
//! bit-for-bit across platforms and thread counts.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Error type for fallible RNG operations. The generators in this shim
/// are infallible, so this is never actually produced; it exists for API
/// parity with `rand::Error`.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Byte-oriented core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`] (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// exactly like `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 expansion (public-domain constants).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from raw bits (stand-in for
/// `distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw in `[0, bound)` by rejection (Lemire-style widening is
/// unnecessary here; rejection keeps it obviously correct).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Zone is the largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let draw = bounded_u64(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same API, different — but equally reproducible — stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Guard against the all-zero state (xoshiro's only fixed
            // point); cannot happen via seed_from_u64 but `from_seed` is
            // public.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Range bounds respected.
        for _ in 0..1000 {
            let v = rng.gen_range(5..8u64);
            assert!((5..8).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
