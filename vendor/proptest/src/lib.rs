//! Offline stand-in for the subset of `proptest` 1.x used by the
//! workspace tests.
//!
//! Provides the [`Strategy`] trait with `prop_map` / `prop_recursive`,
//! [`Just`], [`any`], numeric-range and char-class string strategies,
//! `proptest::collection::vec`, uniform unions via [`prop_oneof!`], and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! There is no shrinking and no persistence: each test runs a fixed
//! number of cases (default 256, override with `PROPTEST_CASES`) on a
//! deterministic RNG seeded from the test's module path and case index,
//! so failures are reproducible run-to-run.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64-seeded xoshiro256++, self-contained)
// ---------------------------------------------------------------------------

/// Deterministic per-case random number generator.
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one test case, seeded from the test name and case index.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut seed);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 below `bound` (rejection sampling; `bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform i128 in [lo, hi) for the integer range strategies.
    fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo) as u128;
        debug_assert!(span > 0 && span <= u128::from(u64::MAX));
        lo + i128::from(self.below(span as u64))
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and erased strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> ArcStrategy<U>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        ArcStrategy {
            f: Arc::new(move |rng| f(self.gen_value(rng))),
        }
    }

    /// Builds a bounded recursive strategy: `recurse` receives a clonable
    /// handle to the strategy built so far and returns a strategy that may
    /// embed it. The recursion is unrolled `depth` times, with leaves mixed
    /// in at every level so generated values bottom out.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = ArcStrategy::erase(self);
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = ArcStrategy::erase(recurse(current));
            // Mix leaves back in so depth (and size) stays bounded in
            // expectation rather than always saturating.
            current = ArcStrategy::union(vec![leaf.clone(), deeper]);
        }
        current
    }
}

/// Clonable type-erased strategy; also the handle passed to
/// `prop_recursive` closures.
pub struct ArcStrategy<T> {
    f: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for ArcStrategy<T> {
    fn clone(&self) -> Self {
        ArcStrategy {
            f: Arc::clone(&self.f),
        }
    }
}

impl<T: 'static> ArcStrategy<T> {
    /// Erases a concrete strategy.
    pub fn erase<S>(strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        ArcStrategy {
            f: Arc::new(move |rng| strategy.gen_value(rng)),
        }
    }

    /// A uniform choice between the given strategies (used by
    /// [`prop_oneof!`]).
    pub fn union(arms: Vec<ArcStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        ArcStrategy {
            f: Arc::new(move |rng| {
                let idx = rng.below(arms.len() as u64) as usize;
                (arms[idx].f)(rng)
            }),
        }
    }
}

impl<T> Strategy for ArcStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

// ---------------------------------------------------------------------------
// Basic strategies
// ---------------------------------------------------------------------------

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes; no NaN/inf from `any`.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32) - 30;
        mag * 2f64.powi(exp)
    }
}

/// Strategy over the whole domain of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        })+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Char-class string strategy: "[a-z0-9]{m,n}"-shaped patterns
// ---------------------------------------------------------------------------

/// Parsed char class: accepted `(lo, hi)` ranges plus length bounds.
type CharClass = (Vec<(char, char)>, usize, usize);

fn parse_char_class(pattern: &str) -> Option<CharClass> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let quant = &rest[close + 1..];

    let mut ranges = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            ranges.push((chars[i], chars[i + 2]));
            i += 3;
        } else {
            ranges.push((chars[i], chars[i]));
            i += 1;
        }
    }
    if ranges.is_empty() {
        return None;
    }

    let (lo, hi) = match quant {
        "" => (1, 1),
        "*" => (0, 8),
        "+" => (1, 8),
        q => {
            let inner = q.strip_prefix('{')?.strip_suffix('}')?;
            match inner.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = inner.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
    };
    Some((ranges, lo, hi))
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (ranges, lo, hi) = parse_char_class(self).unwrap_or_else(|| {
            panic!("unsupported string strategy pattern: {self:?} (expected \"[class]{{m,n}}\")")
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let (a, b) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = (b as u32) - (a as u32) + 1;
            let code = (a as u32) + rng.below(u64::from(span)) as u32;
            out.push(char::from_u32(code).unwrap_or(a));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies (arity 1–4)
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Element-count specification for [`collection::vec`]: a fixed size or a
/// half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Per-block test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test (still overridable via the
    /// `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Resolves the effective case count, honouring `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::ArcStrategy::union(vec![
            $( $crate::ArcStrategy::erase($arm) ),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case rather
/// than panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right` ({})\n  left: {left:?}\n right: {right:?}",
                format!($($fmt)+)
            ));
        }
    }};
}

/// Declares a block of property tests. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*
        );
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategy = ($($strat,)+);
                let __cases = __config.effective_cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(__case),
                    );
                    let ($($pat,)+) =
                        $crate::Strategy::gen_value(&__strategy, &mut __rng);
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!("case {__case}/{__cases} failed: {__msg}");
                    }
                }
            }
        )*
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{AnyStrategy, ArcStrategy, Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..200 {
            let v = (0u64..10).gen_value(&mut rng);
            assert!(v < 10);
            let f = (-1.5f64..2.5).gen_value(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
        let doubled = (0i32..5).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = doubled.gen_value(&mut rng);
            assert!(v % 2 == 0 && (0..10).contains(&v));
        }
    }

    #[test]
    fn oneof_recursive_and_vec() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaf_min(t: &Tree) -> i32 {
            match t {
                Tree::Leaf(v) => *v,
                Tree::Node(a, b) => leaf_min(a).min(leaf_min(b)),
            }
        }
        let leaf = prop_oneof![
            (0i32..10).prop_map(Tree::Leaf),
            Just(5).prop_map(Tree::Leaf)
        ];
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("tree", 1);
        let mut saw_node = false;
        for _ in 0..100 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 3);
            assert!((0..10).contains(&leaf_min(&t)), "leaves stay in range");
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never took a deep branch");

        let vecs = collection::vec(0u64..4, 1..5);
        for _ in 0..50 {
            let v = vecs.gen_value(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let fixed = collection::vec(0u64..4, 6usize);
        assert_eq!(fixed.gen_value(&mut rng).len(), 6);
    }

    #[test]
    fn string_pattern_strategy() {
        let strat = "[ -~]{0,12}";
        let mut rng = TestRng::deterministic("strings", 2);
        for _ in 0..100 {
            let s = Strategy::gen_value(&strat, &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let strat = (0u64..1_000_000, collection::vec(0i32..100, 2..9));
        let a: Vec<_> = (0..10)
            .map(|case| strat.gen_value(&mut TestRng::deterministic("det", case)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|case| strat.gen_value(&mut TestRng::deterministic("det", case)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different cases should differ");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0u64..100, ys in collection::vec(0u64..10, 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(x / 100, 0);
            prop_assert!(ys.len() < 4);
            for y in ys {
                prop_assert!(y < 10, "y was {}", y);
            }
        }
    }
}
